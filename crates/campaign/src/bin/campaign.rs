//! Fault-campaign CLI: sweeps fault class × MTBE × protection × seed,
//! checks hard invariants, prints a summary table, and writes a JSON
//! report.
//!
//! ```text
//! campaign [--quick] [--seeds N] [--frames N] [--threads N]
//!          [--executor det|threaded] [--transport per-item|batched|lock-free]
//!          [--classes a,b,..] [--mtbe n1,n2,..]
//!          [--paced] [--period N] [--deadline N] [--slo N]
//!          [--out PATH] [--trace] [--trace-dir DIR]
//!          [--telemetry] [--telemetry-dir DIR]
//! campaign --deadline-sweep [--quick] [--apps a,b,..] [--mults n1,n2,..] [...]
//! campaign --random N [--seed S] [--repro-dir DIR] [...]
//! campaign --replay FILE[,FILE..]
//! ```
//!
//! Exits nonzero when any CommGuard run violates an invariant; in
//! `--random` mode when a failure could not be minimized into a
//! replayable artifact; in `--replay` mode when a fresh run's verdict
//! disagrees with the artifact's recorded one.

use std::process::ExitCode;

use cg_apps::BenchApp;
use cg_campaign::fuzz::{self, FuzzReport, FuzzSpec};
use cg_campaign::json::Json;
use cg_campaign::{
    run_campaign, run_deadline_sweep, CampaignReport, CampaignSpec, DeadlineReport,
    DeadlineSweepSpec, ExecutorKind, Outcome,
};
use cg_fault::{FaultClass, Mtbe};
use cg_runtime::{Pacing, ParTransport};

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--quick] [--seeds N] [--frames N] [--threads N]\n\
         \x20               [--executor det|threaded]\n\
         \x20               [--transport per-item|batched|lock-free]\n\
         \x20               [--classes a,b,..]\n\
         \x20               [--mtbe n1,n2,..] [--out PATH]\n\
         \x20               [--paced] [--period N] [--deadline N] [--slo N]\n\
         \x20               [--trace] [--trace-dir DIR]\n\
         \x20               [--telemetry] [--telemetry-dir DIR]\n\
         \x20      campaign --deadline-sweep [--quick] [--apps a,b,..]\n\
         \x20               [--mults n1,n2,..] [--seeds N] [--classes a,b,..]\n\
         \x20               [--mtbe n1,n2,..] [--threads N] [--out PATH]\n\
         \x20      campaign --random N [--seed S] [--repro-dir DIR] [...]\n\
         \x20      campaign --replay FILE[,FILE..]\n\
         \n\
         executor:  det = deterministic round-robin simulator (default);\n\
         \x20          threaded = one OS thread per node with fault injection\n\
         \x20          and frame-level checkpoint/re-execute recovery\n\
         transport: threaded executor's inter-worker queues: lock-free SPSC\n\
         \x20          rings (default), or the mutex/condvar batched /\n\
         \x20          per-item baselines\n\
         classes:   baseline burst stuck-at pointer header (default: all)\n\
         mtbe:      mean instructions between errors (default: 256,2048,16384)\n\
         out:       JSON report path (default: campaign_report.json)\n\
         trace:     record event traces; violating/mismatching/hanging runs\n\
         \x20          dump .trace/.chrome.json/.propagation.txt files\n\
         trace-dir: where dumps go (default: traces; implies --trace)\n\
         telemetry: enable the metrics plane; every run dumps a Prometheus\n\
         \x20          .prom + snapshot .jsonl pair and its frame-latency\n\
         \x20          p50/p99 land in the table and JSON\n\
         telemetry-dir: where telemetry dumps go (default: telemetry;\n\
         \x20          implies --telemetry)\n\
         paced:     run every cell on a real-time schedule: sources release\n\
         \x20          frames on the period, overdue frames degrade at the\n\
         \x20          deadline, and on-time/miss counts land in the table\n\
         \x20          and JSON (units: scheduler rounds on det, us threaded)\n\
         period/deadline/slo: override the executor's default schedule\n\
         \x20          (each implies --paced)\n\
         deadline-sweep: quality-vs-MTBE-vs-deadline surface over the app\n\
         \x20          suite: per-app calibrated base latency, deadlines at\n\
         \x20          --mults multiples of it, quality in dB per cell\n\
         apps:      restrict the sweep's app set (default: all six)\n\
         mults:     deadline budgets as base-latency multiples (default 1,2,8)\n\
         random:    fuzz mode — generate N seeded random stream graphs and\n\
         \x20          run each through the golden, det-vs-threaded parity,\n\
         \x20          and faulted differential oracles; failures are shrunk\n\
         \x20          to minimal repros and written as JSON artifacts\n\
         seed:      base seed for --random graph derivation (default: 1)\n\
         repro-dir: where fuzz artifacts go (default: fuzz_repros)\n\
         replay:    re-execute repro artifact(s) exactly and compare the\n\
         \x20          fresh verdict against the recorded one"
    );
    std::process::exit(2)
}

struct Args {
    spec: CampaignSpec,
    out: String,
    /// `--random N`: fuzz mode with N generated graphs (0 = off).
    random: u64,
    /// `--seed S`: base seed for fuzz graph derivation.
    fuzz_seed: u64,
    /// `--repro-dir DIR`: where fuzz artifacts go.
    repro_dir: String,
    /// `--replay FILE,..`: replay mode.
    replay: Vec<String>,
    /// Whether `--frames` was given explicitly (fuzz defaults lower).
    frames_set: bool,
    /// `--deadline-sweep`: quality-vs-deadline surface over the app suite.
    deadline_sweep: bool,
    /// The deadline sweep's resolved spec (only read in sweep mode).
    sweep: DeadlineSweepSpec,
    /// Whether `--out` was given explicitly (sweep mode defaults differ).
    out_set: bool,
}

/// Parses an app name as the paper writes it.
fn parse_app(s: &str) -> BenchApp {
    BenchApp::all()
        .into_iter()
        .find(|a| a.name() == s)
        .unwrap_or_else(|| {
            eprintln!(
                "unknown app '{s}' (expected one of: {})",
                BenchApp::all().map(|a| a.name()).join(", ")
            );
            usage()
        })
}

fn parse_args() -> Args {
    let mut spec = CampaignSpec::default();
    let mut out = "campaign_report.json".to_string();
    let mut random = 0u64;
    let mut fuzz_seed = 1u64;
    let mut repro_dir = "fuzz_repros".to_string();
    let mut replay = Vec::new();
    let mut frames_set = false;
    let mut quick = false;
    let mut seeds_set = false;
    let mut classes_set = false;
    let mut mtbes_set = false;
    let mut out_set = false;
    let mut paced = false;
    let mut period_override = None;
    let mut deadline_override = None;
    let mut slo_override = None;
    let mut deadline_sweep = false;
    let mut apps_override: Option<Vec<BenchApp>> = None;
    let mut mults_override: Option<Vec<u64>> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => {
                let base = CampaignSpec::quick();
                spec.seeds = base.seeds;
                spec.frames = base.frames;
                quick = true;
            }
            "--seeds" => {
                spec.seeds = value(&mut i).parse().unwrap_or_else(|_| usage());
                seeds_set = true;
            }
            "--frames" => {
                spec.frames = value(&mut i).parse().unwrap_or_else(|_| usage());
                frames_set = true;
            }
            "--threads" => {
                spec.threads = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--executor" => {
                spec.executor = ExecutorKind::parse(&value(&mut i)).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
            }
            "--transport" => {
                let v = value(&mut i);
                spec.transport = ParTransport::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown transport '{v}' (expected per-item, batched or lock-free)");
                    usage()
                });
            }
            "--classes" => {
                spec.classes = value(&mut i)
                    .split(',')
                    .map(|s| {
                        FaultClass::parse(s).unwrap_or_else(|e| {
                            eprintln!("{e}");
                            usage()
                        })
                    })
                    .collect();
                classes_set = true;
            }
            "--mtbe" => {
                spec.mtbes = value(&mut i)
                    .split(',')
                    .map(|s| Mtbe::instructions(s.parse().unwrap_or_else(|_| usage())))
                    .collect();
                mtbes_set = true;
            }
            "--out" => {
                out = value(&mut i);
                out_set = true;
            }
            "--paced" => paced = true,
            "--period" => {
                period_override = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--deadline" => {
                deadline_override = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--slo" => {
                slo_override = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--deadline-sweep" => deadline_sweep = true,
            "--apps" => {
                apps_override = Some(value(&mut i).split(',').map(parse_app).collect());
            }
            "--mults" => {
                mults_override = Some(
                    value(&mut i)
                        .split(',')
                        .map(|s| s.parse().unwrap_or_else(|_| usage()))
                        .collect(),
                );
            }
            "--trace" => {
                if spec.trace_dir.is_none() {
                    spec.trace_dir = Some("traces".to_string());
                }
            }
            "--trace-dir" => spec.trace_dir = Some(value(&mut i)),
            "--telemetry" => {
                if spec.telemetry_dir.is_none() {
                    spec.telemetry_dir = Some("telemetry".to_string());
                }
            }
            "--telemetry-dir" => spec.telemetry_dir = Some(value(&mut i)),
            "--random" => {
                random = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--seed" => {
                fuzz_seed = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--repro-dir" => repro_dir = value(&mut i),
            "--replay" => {
                replay.extend(value(&mut i).split(',').map(str::to_string));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
        i += 1;
    }
    if spec.classes.is_empty() || spec.mtbes.is_empty() || spec.seeds == 0 {
        usage()
    }
    // A schedule override implies --paced; start from the executor's
    // default schedule and apply whichever knobs were given.
    if paced || period_override.is_some() || deadline_override.is_some() || slo_override.is_some() {
        let Pacing::Paced {
            period,
            deadline,
            slo,
        } = spec.executor.default_pacing()
        else {
            unreachable!("default_pacing is always paced")
        };
        let deadline = deadline_override.unwrap_or(deadline);
        spec.pacing = Some(Pacing::Paced {
            period: period_override.unwrap_or(period),
            // An explicit deadline moves the SLO with it unless the SLO
            // was itself pinned.
            deadline,
            slo: slo_override.unwrap_or(if deadline_override.is_some() {
                deadline
            } else {
                slo
            }),
        });
    }
    // The deadline sweep reuses the shared axes only where the user set
    // them explicitly; its own defaults differ from the main campaign's.
    let mut sweep = if quick {
        DeadlineSweepSpec::quick()
    } else {
        DeadlineSweepSpec::default()
    };
    if let Some(apps) = apps_override {
        sweep.apps = apps;
    }
    if let Some(mults) = mults_override {
        sweep.deadline_mults = mults;
    }
    if seeds_set {
        sweep.seeds = spec.seeds;
    }
    if classes_set {
        sweep.classes = spec.classes.clone();
    }
    if mtbes_set {
        sweep.mtbes = spec.mtbes.clone();
    }
    sweep.threads = spec.threads;
    if deadline_sweep
        && (sweep.apps.is_empty()
            || sweep.classes.is_empty()
            || sweep.mtbes.is_empty()
            || sweep.deadline_mults.is_empty()
            || sweep.seeds == 0)
    {
        usage()
    }
    Args {
        spec,
        out,
        random,
        fuzz_seed,
        repro_dir,
        replay,
        frames_set,
        deadline_sweep,
        sweep,
        out_set,
    }
}

/// Builds the fuzz configuration from shared CLI axes.
fn fuzz_spec(args: &Args) -> FuzzSpec {
    let base = FuzzSpec::default();
    FuzzSpec {
        count: args.random,
        seed: args.fuzz_seed,
        frames: if args.frames_set {
            args.spec.frames
        } else {
            base.frames
        },
        executor: args.spec.executor,
        transport: args.spec.transport,
        classes: args.spec.classes.clone(),
        mtbe: args
            .spec
            .mtbes
            .first()
            .map_or(base.mtbe, |m| m.as_instructions()),
        threads: args.spec.threads,
        repro_dir: Some(args.repro_dir.clone()),
        ..base
    }
}

fn to_json(report: &CampaignReport) -> Json {
    let spec = &report.spec;
    let mut jspec = Json::object();
    jspec
        .set(
            "classes",
            spec.classes
                .iter()
                .map(|c| Json::from(c.label()))
                .collect::<Vec<_>>(),
        )
        .set(
            "mtbe_instructions",
            spec.mtbes
                .iter()
                .map(|m| Json::from(m.as_instructions()))
                .collect::<Vec<_>>(),
        )
        .set(
            "protections",
            spec.protections
                .iter()
                .map(|p| Json::from(p.label()))
                .collect::<Vec<_>>(),
        )
        .set("seeds", spec.seeds)
        .set("frames", spec.frames)
        .set("queue_capacity", spec.queue_capacity)
        .set("max_rounds", spec.max_rounds)
        .set("executor", spec.executor.label())
        .set("transport", spec.transport.label())
        .set(
            "trace_dir",
            spec.trace_dir.as_deref().map_or(Json::Null, Json::from),
        )
        .set(
            "telemetry_dir",
            spec.telemetry_dir.as_deref().map_or(Json::Null, Json::from),
        )
        .set(
            "pacing",
            match spec.pacing {
                Some(Pacing::Paced {
                    period,
                    deadline,
                    slo,
                }) => {
                    let mut jp = Json::object();
                    jp.set("period", period)
                        .set("deadline", deadline)
                        .set("slo", slo);
                    jp
                }
                _ => Json::Null,
            },
        );

    let runs: Vec<Json> = report
        .runs
        .iter()
        .map(|r| {
            let mut j = Json::object();
            j.set("class", r.cell.class.label())
                .set("mtbe_instructions", r.cell.mtbe.as_instructions())
                .set("protection", r.cell.protection.label())
                .set("seed", r.cell.seed)
                .set("outcome", r.outcome.label())
                .set("completed", r.completed)
                .set("sink_len", r.sink_len)
                .set("expected_len", r.expected_len)
                .set("faults", r.faults)
                .set("timeouts", r.timeouts)
                .set("watchdog_escalations", r.watchdog_escalations)
                .set("wd_timeouts_armed", r.watchdog.timeout_escalations)
                .set("wd_forced_progress", r.watchdog.forced_progress)
                .set("wd_frame_aborts", r.watchdog.frame_aborts)
                .set("frame_retries", r.watchdog.frame_retries)
                .set("frames_degraded", r.watchdog.frame_degrades)
                .set("realign_events", r.realign_events)
                .set("max_queue_occupancy", r.max_queue_occupancy)
                .set("blocked_ops", r.blocked_ops)
                .set(
                    "frame_latency_p50",
                    r.frame_latency.map_or(Json::Null, |(p50, _)| p50.into()),
                )
                .set(
                    "frame_latency_p99",
                    r.frame_latency.map_or(Json::Null, |(_, p99)| p99.into()),
                )
                .set(
                    "telemetry_file",
                    r.telemetry_file.as_deref().map_or(Json::Null, Json::from),
                )
                .set(
                    "frames_on_time",
                    r.pacing
                        .as_ref()
                        .map_or(Json::Null, |p| p.frames_on_time.into()),
                )
                .set(
                    "deadline_misses",
                    r.pacing
                        .as_ref()
                        .map_or(Json::Null, |p| p.deadline_misses.into()),
                )
                .set(
                    "degraded_for_deadline",
                    r.pacing
                        .as_ref()
                        .map_or(Json::Null, |p| p.degraded_for_deadline.into()),
                )
                .set(
                    "pace_p99_latency",
                    r.pacing
                        .as_ref()
                        .map_or(Json::Null, |p| p.p99_latency().into()),
                )
                .set(
                    "slo_met",
                    r.pacing.as_ref().map_or(Json::Null, |p| p.slo_met().into()),
                )
                .set(
                    "pacing_unit",
                    r.pacing.as_ref().map_or(Json::Null, |p| p.unit.into()),
                )
                .set(
                    "violations",
                    r.violations
                        .iter()
                        .map(|v| Json::from(v.as_str()))
                        .collect::<Vec<_>>(),
                )
                .set(
                    "trace_file",
                    r.trace_file.as_deref().map_or(Json::Null, Json::from),
                )
                .set(
                    "propagation",
                    r.propagation
                        .iter()
                        .map(|p| Json::from(p.as_str()))
                        .collect::<Vec<_>>(),
                );
            j
        })
        .collect();

    let mut doc = Json::object();
    doc.set("spec", jspec)
        .set("workers", report.workers)
        .set("total_runs", report.runs.len())
        .set("violations", report.violations().len())
        .set("runs", runs);
    doc
}

fn print_summary(report: &CampaignReport) {
    println!(
        "workers: {} ({})",
        report.workers,
        if report.spec.threads == 0 {
            "auto-resolved"
        } else {
            "requested"
        }
    );
    // Per-rung watchdog columns: wd1 = QM timeouts armed, wd2 = forced
    // progress, wd3 = frame aborts; retry/degr are the recovery rung
    // (frame re-executions and budget-exhausted degradations); maxq is
    // the deepest queue high-water over the group, blkd the blocked
    // pushes+pops. The p50/p99 frame-latency columns (clock units) only
    // appear on telemetered sweeps.
    let telemetered = report.spec.telemetry_dir.is_some();
    let latency_hdr = if telemetered {
        format!(" {:>6} {:>6}", "p50", "p99")
    } else {
        String::new()
    };
    // Paced sweeps append the deadline columns: on-time frames, misses,
    // frames the ladder degraded for their deadline, and the worst p99
    // release-to-commit latency in the group (clock units).
    let paced = report.spec.pacing.is_some();
    let paced_hdr = if paced {
        format!(
            " {:>6} {:>5} {:>5} {:>7}",
            "ontime", "miss", "ddl", "pacep99"
        )
    } else {
        String::new()
    };
    println!(
        "{:<10} {:>8}  {:<22} {:>4} {:>4} {:>4} {:>4}  {:>7} {:>7} {:>4} {:>4} {:>4} {:>5} {:>4} {:>5} {:>5}{latency_hdr}{paced_hdr}",
        "class",
        "mtbe",
        "protection",
        "ok",
        "deg",
        "mis",
        "hang",
        "faults",
        "realgn",
        "wd1",
        "wd2",
        "wd3",
        "retry",
        "degr",
        "maxq",
        "blkd"
    );
    for &class in &report.spec.classes {
        for &mtbe in &report.spec.mtbes {
            for &protection in &report.spec.protections {
                let sel = |r: &cg_campaign::RunRecord| {
                    r.cell.class == class
                        && r.cell.mtbe == mtbe
                        && r.cell.protection.label() == protection.label()
                };
                let counts = report.outcome_counts(sel);
                let rows: Vec<_> = report.runs.iter().filter(|r| sel(r)).collect();
                let faults: u64 = rows.iter().map(|r| r.faults).sum();
                let realign: u64 = rows.iter().map(|r| r.realign_events).sum();
                let sum = |f: fn(&cg_runtime::WatchdogStats) -> u64| -> u64 {
                    rows.iter().map(|r| f(&r.watchdog)).sum()
                };
                let maxq = rows
                    .iter()
                    .map(|r| r.max_queue_occupancy)
                    .max()
                    .unwrap_or(0);
                let blocked: u64 = rows.iter().map(|r| r.blocked_ops).sum();
                let latency = if telemetered {
                    // Worst seed in the group: the tail is what the
                    // telemetry plane is for.
                    let p50 = rows.iter().filter_map(|r| r.frame_latency).map(|l| l.0);
                    let p99 = rows.iter().filter_map(|r| r.frame_latency).map(|l| l.1);
                    format!(
                        " {:>6} {:>6}",
                        p50.max().unwrap_or(0),
                        p99.max().unwrap_or(0)
                    )
                } else {
                    String::new()
                };
                let paced_cols = if paced {
                    let pacing = || rows.iter().filter_map(|r| r.pacing.as_ref());
                    format!(
                        " {:>6} {:>5} {:>5} {:>7}",
                        pacing().map(|p| p.frames_on_time).sum::<u64>(),
                        pacing().map(|p| p.deadline_misses).sum::<u64>(),
                        pacing().map(|p| p.degraded_for_deadline).sum::<u64>(),
                        pacing().map(|p| p.p99_latency()).max().unwrap_or(0),
                    )
                } else {
                    String::new()
                };
                println!(
                    "{:<10} {:>8}  {:<22} {:>4} {:>4} {:>4} {:>4}  {:>7} {:>7} {:>4} {:>4} {:>4} {:>5} {:>4} {:>5} {:>5}{latency}{paced_cols}",
                    class.label(),
                    mtbe.as_instructions(),
                    protection.label(),
                    counts[Outcome::Ok as usize],
                    counts[Outcome::DataDegraded as usize],
                    counts[Outcome::StructuralMismatch as usize],
                    counts[Outcome::Hang as usize],
                    faults,
                    realign,
                    sum(|w| w.timeout_escalations),
                    sum(|w| w.forced_progress),
                    sum(|w| w.frame_aborts),
                    sum(|w| w.frame_retries),
                    sum(|w| w.frame_degrades),
                    maxq,
                    blocked,
                );
            }
        }
    }
}

fn fuzz_to_json(report: &FuzzReport) -> Json {
    let spec = &report.spec;
    let mut jspec = Json::object();
    jspec
        .set("count", spec.count)
        .set("seed", spec.seed)
        .set("frames", spec.frames)
        .set("executor", spec.executor.label())
        .set("transport", spec.transport.label())
        .set(
            "parity_transports",
            spec.parity_transports
                .iter()
                .map(|t| Json::from(t.label()))
                .collect::<Vec<_>>(),
        )
        .set(
            "classes",
            spec.classes
                .iter()
                .map(|c| Json::from(c.label()))
                .collect::<Vec<_>>(),
        )
        .set("mtbe_instructions", spec.mtbe)
        .set(
            "repro_dir",
            spec.repro_dir.as_deref().map_or(Json::Null, Json::from),
        );
    let cases: Vec<Json> = report
        .cases
        .iter()
        .map(|c| {
            let mut j = Json::object();
            j.set("index", c.index)
                .set("graph_seed", c.graph_seed)
                .set("name", c.name.as_str())
                .set("nodes", c.nodes)
                .set("edges", c.edges)
                .set("queue_capacity", c.queue_capacity)
                .set("checks", c.checks)
                .set(
                    "failures",
                    c.failures
                        .iter()
                        .map(|f| {
                            let mut jf = fuzz::case_to_json(&f.case, "fail", &f.violations);
                            jf.set("original_nodes", f.original.0)
                                .set("original_edges", f.original.1)
                                .set("original_frames", f.original.2)
                                .set("shrink_checks", f.shrink_checks)
                                .set(
                                    "artifact",
                                    f.artifact.as_deref().map_or(Json::Null, Json::from),
                                );
                            jf
                        })
                        .collect::<Vec<_>>(),
                );
            j
        })
        .collect();
    let mut doc = Json::object();
    doc.set("spec", jspec)
        .set("workers", report.workers)
        .set("total_checks", report.total_checks())
        .set("failures", report.failures().len())
        .set("cases", cases);
    doc
}

fn run_fuzz_mode(args: &Args) -> ExitCode {
    let spec = fuzz_spec(args);
    eprintln!(
        "campaign: fuzz mode — {} random graphs from seed {}, {} checks each \
         ({} executor, {} transport, {} frames)",
        spec.count,
        spec.seed,
        spec.checks_per_graph(),
        spec.executor.label(),
        spec.transport.label(),
        spec.frames
    );
    let report = fuzz::run_fuzz(&spec);
    let (nodes, edges): (usize, usize) = report
        .cases
        .iter()
        .fold((0, 0), |(n, e), c| (n + c.nodes, e + c.edges));
    println!(
        "graphs: {}  checks: {}  avg nodes: {:.1}  avg edges: {:.1}  workers: {}",
        report.cases.len(),
        report.total_checks(),
        nodes as f64 / report.cases.len().max(1) as f64,
        edges as f64 / report.cases.len().max(1) as f64,
        report.workers
    );
    for f in report.failures() {
        let (on, oe, of) = f.original;
        println!(
            "FAILURE [{} oracle, {} class, seed {}]: {} nodes/{} edges/{} frames \
             (shrunk from {on}/{oe}/{of} in {} checks) -> {}",
            f.case.oracle.label(),
            f.case.class.label(),
            f.case.seed,
            f.case.spec.nodes.len(),
            f.case.spec.edges.len(),
            f.case.frames,
            f.shrink_checks,
            f.artifact.as_deref().unwrap_or("<artifact write failed>")
        );
        for v in &f.violations {
            println!("  violation: {v}");
        }
    }
    if let Err(e) = std::fs::write(&args.out, fuzz_to_json(&report).pretty()) {
        eprintln!("campaign: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    eprintln!("campaign: fuzz report written to {}", args.out);
    let unminimized = report.unminimized();
    if unminimized > 0 {
        eprintln!("campaign: {unminimized} failure(s) left no replayable artifact");
        return ExitCode::FAILURE;
    }
    let failures = report.failures().len();
    if failures > 0 {
        eprintln!("campaign: {failures} failure(s) found, each minimized to a replayable artifact");
    } else {
        eprintln!("campaign: all differential oracles held");
    }
    ExitCode::SUCCESS
}

fn sweep_to_json(report: &DeadlineReport) -> Json {
    let spec = &report.spec;
    let mut jspec = Json::object();
    jspec
        .set(
            "apps",
            spec.apps
                .iter()
                .map(|a| Json::from(a.name()))
                .collect::<Vec<_>>(),
        )
        .set(
            "classes",
            spec.classes
                .iter()
                .map(|c| Json::from(c.label()))
                .collect::<Vec<_>>(),
        )
        .set(
            "mtbe_instructions",
            spec.mtbes
                .iter()
                .map(|m| Json::from(m.as_instructions()))
                .collect::<Vec<_>>(),
        )
        .set(
            "deadline_mults",
            spec.deadline_mults
                .iter()
                .map(|&m| Json::from(m))
                .collect::<Vec<_>>(),
        )
        .set("seeds", spec.seeds);
    let runs: Vec<Json> = report
        .runs
        .iter()
        .map(|r| {
            let mut j = Json::object();
            j.set("app", r.cell.app.name())
                .set("class", r.cell.class.label())
                .set("mtbe_instructions", r.cell.mtbe.as_instructions())
                .set("deadline_mult", r.cell.mult)
                .set("seed", r.cell.seed)
                .set("base_latency", r.base_latency)
                .set("period", r.period)
                .set("deadline", r.deadline)
                .set("completed", r.completed)
                .set("quality_db", r.quality_db)
                .set("faults", r.faults)
                .set("frames_on_time", r.pacing.frames_on_time)
                .set("deadline_misses", r.pacing.deadline_misses)
                .set("degraded_for_deadline", r.pacing.degraded_for_deadline)
                .set("pace_p99_latency", r.pacing.p99_latency())
                .set("slo_met", r.pacing.slo_met())
                .set("pacing_unit", r.pacing.unit)
                .set(
                    "violations",
                    r.violations
                        .iter()
                        .map(|v| Json::from(v.as_str()))
                        .collect::<Vec<_>>(),
                );
            j
        })
        .collect();
    let mut doc = Json::object();
    doc.set("spec", jspec)
        .set("workers", report.workers)
        .set("total_runs", report.runs.len())
        .set("violations", report.violations().len())
        .set("runs", runs);
    doc
}

fn print_sweep_summary(report: &DeadlineReport) {
    println!(
        "{:<16} {:<10} {:>8} {:>5} {:>6} {:>8}  {:>6} {:>5} {:>5} {:>7} {:>9}",
        "app",
        "class",
        "mtbe",
        "mult",
        "baseL",
        "deadline",
        "ontime",
        "miss",
        "ddl",
        "pacep99",
        "avg dB"
    );
    for &app in &report.spec.apps {
        for &class in &report.spec.classes {
            for &mtbe in &report.spec.mtbes {
                for &mult in &report.spec.deadline_mults {
                    let rows: Vec<_> = report
                        .runs
                        .iter()
                        .filter(|r| {
                            r.cell.app == app
                                && r.cell.class == class
                                && r.cell.mtbe == mtbe
                                && r.cell.mult == mult
                        })
                        .collect();
                    if rows.is_empty() {
                        continue;
                    }
                    let quality: f64 =
                        rows.iter().map(|r| r.quality_db).sum::<f64>() / rows.len() as f64;
                    println!(
                        "{:<16} {:<10} {:>8} {:>5} {:>6} {:>8}  {:>6} {:>5} {:>5} {:>7} {:>9.2}",
                        app.name(),
                        class.label(),
                        mtbe.as_instructions(),
                        mult,
                        rows[0].base_latency,
                        rows[0].deadline,
                        rows.iter().map(|r| r.pacing.frames_on_time).sum::<u64>(),
                        rows.iter().map(|r| r.pacing.deadline_misses).sum::<u64>(),
                        rows.iter()
                            .map(|r| r.pacing.degraded_for_deadline)
                            .sum::<u64>(),
                        rows.iter()
                            .map(|r| r.pacing.p99_latency())
                            .max()
                            .unwrap_or(0),
                        quality,
                    );
                }
            }
        }
    }
}

fn run_sweep_mode(args: &Args) -> ExitCode {
    let spec = &args.sweep;
    eprintln!(
        "campaign: deadline sweep — {} apps x {} classes x {} mtbes x {} budgets x {} seeds \
         = {} runs (det executor, commguard, rounds)",
        spec.apps.len(),
        spec.classes.len(),
        spec.mtbes.len(),
        spec.deadline_mults.len(),
        spec.seeds,
        spec.total_runs(),
    );
    let report = run_deadline_sweep(spec);
    print_sweep_summary(&report);
    let out = if args.out_set {
        args.out.clone()
    } else {
        "deadline_sweep.json".to_string()
    };
    if let Err(e) = std::fs::write(&out, sweep_to_json(&report).pretty()) {
        eprintln!("campaign: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    eprintln!("campaign: deadline-sweep report written to {out}");
    let violations = report.violations();
    if violations.is_empty() {
        eprintln!("campaign: all deadline-sweep invariants held");
        ExitCode::SUCCESS
    } else {
        for (r, v) in &violations {
            eprintln!(
                "VIOLATION [{} {} mtbe={} x{} seed={}]: {v}",
                r.cell.app.name(),
                r.cell.class,
                r.cell.mtbe.as_instructions(),
                r.cell.mult,
                r.cell.seed
            );
        }
        eprintln!("campaign: {} invariant violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn run_replay_mode(paths: &[String]) -> ExitCode {
    let mut mismatched = 0usize;
    for path in paths {
        match fuzz::replay_file(path) {
            Ok(replay) => {
                println!(
                    "{path}: recorded {} / fresh {}{}",
                    replay.recorded_verdict,
                    replay.verdict,
                    if replay.matched { "" } else { "  << MISMATCH" }
                );
                for v in &replay.violations {
                    println!("  violation: {v}");
                }
                if !replay.matched {
                    mismatched += 1;
                }
            }
            Err(e) => {
                eprintln!("{e}");
                mismatched += 1;
            }
        }
    }
    if mismatched == 0 {
        eprintln!(
            "campaign: {} artifact(s) replayed, all verdicts match",
            paths.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("campaign: {mismatched} artifact(s) failed to replay faithfully");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if !args.replay.is_empty() {
        return run_replay_mode(&args.replay);
    }
    if args.random > 0 {
        return run_fuzz_mode(&args);
    }
    if args.deadline_sweep {
        return run_sweep_mode(&args);
    }
    eprintln!(
        "campaign: {} classes x {} mtbes x {} protections x {} seeds = {} runs ({} executor{}{})",
        args.spec.classes.len(),
        args.spec.mtbes.len(),
        args.spec.protections.len(),
        args.spec.seeds,
        args.spec.total_runs(),
        args.spec.executor.label(),
        if args.spec.executor == ExecutorKind::Threaded {
            format!(", {} transport", args.spec.transport.label())
        } else {
            String::new()
        },
        match args.spec.pacing {
            Some(Pacing::Paced {
                period, deadline, ..
            }) => format!(", paced {period}/{deadline}"),
            _ => String::new(),
        }
    );
    let report = run_campaign(&args.spec);
    print_summary(&report);
    if let Some(dir) = &report.spec.trace_dir {
        let dumped = report
            .runs
            .iter()
            .filter(|r| r.trace_file.is_some())
            .count();
        let chains: usize = report.runs.iter().map(|r| r.propagation.len()).sum();
        eprintln!(
            "campaign: {dumped} trace dump(s) in {dir}/ ({chains} propagation chain(s); \
             inspect with `cargo run -p cg-trace -- analyze <file>`)"
        );
    }
    if let Some(dir) = &report.spec.telemetry_dir {
        let dumped = report
            .runs
            .iter()
            .filter(|r| r.telemetry_file.is_some())
            .count();
        eprintln!(
            "campaign: {dumped} telemetry dump(s) in {dir}/ (.prom + .jsonl per run; \
             inspect with `cargo run -p cg-telemetry -- summary <file>.jsonl`)"
        );
    }

    let doc = to_json(&report);
    if let Err(e) = std::fs::write(&args.out, doc.pretty()) {
        eprintln!("campaign: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    eprintln!("campaign: report written to {}", args.out);

    let violations = report.violations();
    if violations.is_empty() {
        eprintln!("campaign: all CommGuard invariants held");
        ExitCode::SUCCESS
    } else {
        for (r, v) in &violations {
            eprintln!(
                "VIOLATION [{} mtbe={} {} seed={}]: {v}",
                r.cell.class,
                r.cell.mtbe.as_instructions(),
                r.cell.protection.label(),
                r.cell.seed
            );
        }
        eprintln!("campaign: {} invariant violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
