//! A tiny JSON document model, serializer, and parser.
//!
//! The build environment has no registry access, so campaign reports are
//! emitted through this hand-rolled writer instead of serde. Only what the
//! campaign needs: objects, arrays, strings, integers, floats, bools.
//! [`Json::parse`] is the inverse, added for `campaign --replay` so fuzz
//! repro artifacts round-trip through the same model.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (covers u64/i64 exactly).
    Int(i128),
    /// Floating-point number; non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Parses a JSON document (strict: one value, trailing whitespace
    /// only).
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer payload, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by the repro
                        // format; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always at a boundary).
                let s = &bytes[*pos..];
                let text = unsafe { std::str::from_utf8_unchecked(s) };
                let c = text.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(i) = text.parse::<i128>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(i: $t) -> Json {
                Json::Int(i as i128)
            }
        }
    )*};
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_document() {
        let mut inner = Json::object();
        inner.set("name", "run \"a\"\n").set("ok", true);
        let mut doc = Json::object();
        doc.set("count", 3u32)
            .set("ratio", 0.5f64)
            .set("items", vec![Json::Int(1), Json::Null])
            .set("meta", inner);
        let s = doc.pretty();
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\\\"a\\\"\\n"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn empty_containers_are_compact() {
        let mut doc = Json::object();
        doc.set("a", Json::Array(vec![])).set("b", Json::object());
        let s = doc.pretty();
        assert!(s.contains("\"a\": []"));
        assert!(s.contains("\"b\": {}"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).pretty().trim(), "null");
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let mut inner = Json::object();
        inner.set("name", "run \"a\"\n\tx").set("ok", true);
        let mut doc = Json::object();
        doc.set("count", 3u32)
            .set("neg", -42i64)
            .set("ratio", 0.5f64)
            .set("items", vec![Json::Int(1), Json::Null, Json::Bool(false)])
            .set("meta", inner)
            .set("empty_a", Json::Array(vec![]))
            .set("empty_o", Json::object());
        let parsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parse_accessors() {
        let doc = Json::parse(r#"{"a": 7, "b": "x", "c": [1, 2], "d": true}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(doc.get("d").and_then(Json::as_bool), Some(true));
        assert!(doc.get("nope").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        let doc = Json::parse(r#""Aé\n""#).unwrap();
        assert_eq!(doc.as_str(), Some("Aé\n"));
    }
}
