//! A tiny JSON document model and serializer.
//!
//! The build environment has no registry access, so campaign reports are
//! emitted through this hand-rolled writer instead of serde. Only what the
//! campaign needs: objects, arrays, strings, integers, floats, bools.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (covers u64/i64 exactly).
    Int(i128),
    /// Floating-point number; non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Object(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(i: $t) -> Json {
                Json::Int(i as i128)
            }
        }
    )*};
}

from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_document() {
        let mut inner = Json::object();
        inner.set("name", "run \"a\"\n").set("ok", true);
        let mut doc = Json::object();
        doc.set("count", 3u32)
            .set("ratio", 0.5f64)
            .set("items", vec![Json::Int(1), Json::Null])
            .set("meta", inner);
        let s = doc.pretty();
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\\\"a\\\"\\n"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn empty_containers_are_compact() {
        let mut doc = Json::object();
        doc.set("a", Json::Array(vec![])).set("b", Json::object());
        let s = doc.pretty();
        assert!(s.contains("\"a\": []"));
        assert!(s.contains("\"b\": {}"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).pretty().trim(), "null");
    }
}
