//! Random-graph fuzz campaigns: every generated stream graph runs
//! through differential oracles (golden determinism, det-vs-threaded
//! bit parity, guarded invariants under faults); failures are shrunk to
//! a minimal reproduction and written as self-contained JSON artifacts
//! that [`replay_file`] re-executes exactly.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use cg_fault::{FaultClass, Mtbe};
use cg_graph::random::{generate, EdgeSpec, GenConfig, GraphSpec, NodeSpec};
use cg_graph::{NodeId, NodeKind};
use cg_runtime::{run, run_parallel_with, ParTransport, Program, SimConfig};
use commguard::Protection;

use crate::json::Json;
use crate::spec::ExecutorKind;

/// Schema tag of repro artifacts; bumped on incompatible layout change.
pub const REPRO_SCHEMA: &str = "commguard-fuzz-repro-v1";

/// Per-check budget of the shrinking loop: how many candidate
/// re-executions [`minimize`] may spend on one failure.
pub const SHRINK_BUDGET: u64 = 80;

/// Base stall timeout for threaded fuzz runs; raised per-graph by
/// [`SimConfig::for_queue_demand`].
const FUZZ_STALL: Duration = Duration::from_millis(150);

/// Frame retry budget for threaded fuzz runs (mirrors the campaign).
const FUZZ_RETRY_BUDGET: u32 = 3;

/// Round cap for deterministic fuzz runs: generous for 16-node graphs
/// at fuzz frame counts, small enough that a genuine livelock is
/// classified (as `completed = false`) in well under a second.
const FUZZ_MAX_ROUNDS: u64 = 8_000_000;

/// Which differential property one [`ReproCase`] checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// The deterministic executor, error-free: must complete with
    /// frame-exact sinks, zero faults/timeouts/escalations, and produce
    /// bit-identical output when run twice.
    Golden,
    /// Error-free guarded runs on both executors must agree bit-exactly:
    /// same sink streams, same header traffic.
    Parity,
    /// A guarded run under fault injection must uphold the CommGuard
    /// invariants: completion, frame-exact sinks, bounded realignment
    /// (det) or header conservation and bounded retries (threaded).
    Faulted,
}

impl Oracle {
    /// Stable machine-readable label (artifacts and reports).
    pub fn label(self) -> &'static str {
        match self {
            Oracle::Golden => "golden",
            Oracle::Parity => "parity",
            Oracle::Faulted => "faulted",
        }
    }

    /// Parses a [`Self::label`] string.
    pub fn parse(s: &str) -> Result<Oracle, String> {
        [Oracle::Golden, Oracle::Parity, Oracle::Faulted]
            .into_iter()
            .find(|o| o.label() == s)
            .ok_or_else(|| format!("unknown oracle `{s}`"))
    }
}

/// One self-contained fuzz check: a graph plus everything needed to
/// re-execute it (the unit that artifacts serialize and replay runs).
#[derive(Debug, Clone, PartialEq)]
pub struct ReproCase {
    /// The graph under test.
    pub spec: GraphSpec,
    /// Which differential property is checked.
    pub oracle: Oracle,
    /// Run seed (fault streams and goldens derive from it).
    pub seed: u64,
    /// Steady-state frames per run.
    pub frames: u64,
    /// Queue capacity per edge.
    pub queue_capacity: usize,
    /// Executor for the [`Oracle::Faulted`] run ([`Oracle::Parity`]
    /// always runs both; [`Oracle::Golden`] is deterministic-only).
    pub executor: ExecutorKind,
    /// Threaded transport under test.
    pub transport: ParTransport,
    /// Fault class for [`Oracle::Faulted`].
    pub class: FaultClass,
    /// Mean instructions between errors for [`Oracle::Faulted`].
    pub mtbe: u64,
}

impl ReproCase {
    /// Runs the case and returns its invariant violations (empty =
    /// pass). `Err` means the spec itself is invalid — possible only
    /// for hand-edited artifacts, never for generated graphs.
    pub fn check(&self) -> Result<Vec<String>, String> {
        if self.queue_capacity < 8 {
            return Err(format!(
                "queue_capacity {} below the ring minimum of 8",
                self.queue_capacity
            ));
        }
        let (graph, profile) = self.spec.build_validated()?;
        let sinks: Vec<(NodeId, String, usize)> = graph
            .nodes()
            .filter(|(_, n)| n.kind() == NodeKind::Sink)
            .map(|(id, n)| {
                let per_frame: u64 = n
                    .inputs()
                    .iter()
                    .map(|&e| profile.schedule.items_per_iteration(e))
                    .sum();
                (id, n.name().to_string(), (per_frame * self.frames) as usize)
            })
            .collect();
        let demand = profile.queue_demand;
        Ok(match self.oracle {
            Oracle::Golden => self.check_golden(demand, &sinks)?,
            Oracle::Parity => self.check_parity(demand, &sinks)?,
            Oracle::Faulted => self.check_faulted(demand, &sinks)?,
        })
    }

    /// Base config for this case. The timeout knobs are floored for the
    /// graph's hottest edge so legal extremes cannot false-positive a
    /// watchdog, but the recorded `queue_capacity` is honored exactly —
    /// capacity-starvation repros depend on it.
    fn config(&self, protection: Protection, inject: bool, demand: u64) -> SimConfig {
        let floored = SimConfig {
            protection,
            inject,
            mtbe: Mtbe::instructions(self.mtbe),
            fault_class: self.class,
            max_rounds: FUZZ_MAX_ROUNDS,
            stall_timeout: FUZZ_STALL,
            par_retry_budget: FUZZ_RETRY_BUDGET,
            ..SimConfig::error_free(self.frames)
        }
        .seed(self.seed)
        .for_queue_demand(demand);
        SimConfig {
            queue_capacity: self.queue_capacity,
            ..floored
        }
    }

    fn check_golden(
        &self,
        demand: u64,
        sinks: &[(NodeId, String, usize)],
    ) -> Result<Vec<String>, String> {
        let mut violations = Vec::new();
        let cfg = self.config(Protection::ErrorFree, false, demand);
        let first = match run(bind_program(&self.spec)?, &cfg) {
            Ok(r) => r,
            Err(e) => return Ok(vec![format!("error-free deterministic run errored: {e}")]),
        };
        if !first.completed {
            violations.push("error-free run hit the round cap".to_string());
        }
        for (id, name, want) in sinks {
            let got = first.sink_output(*id).len();
            if got != *want {
                violations.push(format!(
                    "sink '{name}' collected {got} items, scheduled {want}"
                ));
            }
        }
        if first.total_faults().total() != 0 {
            violations.push("error-free run injected faults".to_string());
        }
        if first.total_timeouts() != 0 {
            violations.push(format!(
                "error-free run fired {} QM timeouts (watchdog false positive)",
                first.total_timeouts()
            ));
        }
        if first.watchdog.total_escalations() != 0 {
            violations.push(format!(
                "error-free run escalated the watchdog {} times",
                first.watchdog.total_escalations()
            ));
        }
        if first.realignment_episodes != 0 {
            violations.push("error-free run realigned streams".to_string());
        }
        let second = match run(bind_program(&self.spec)?, &cfg) {
            Ok(r) => r,
            Err(e) => return Ok(vec![format!("error-free re-run errored: {e}")]),
        };
        if second.sinks != first.sinks {
            violations.push("deterministic executor is not deterministic: re-run diverged".into());
        }
        Ok(violations)
    }

    fn check_parity(
        &self,
        demand: u64,
        sinks: &[(NodeId, String, usize)],
    ) -> Result<Vec<String>, String> {
        let cfg = self.config(Protection::commguard(), false, demand);
        let det = match run(bind_program(&self.spec)?, &cfg) {
            Ok(r) => r,
            Err(e) => return Ok(vec![format!("guarded deterministic run errored: {e}")]),
        };
        let threaded = match run_parallel_with(bind_program(&self.spec)?, &cfg, self.transport) {
            Ok(r) => r,
            Err(e) => {
                return Ok(vec![format!(
                    "error-free threaded run ({}) errored: {e}",
                    self.transport.label()
                )])
            }
        };
        let mut violations = Vec::new();
        if !det.completed || !threaded.completed {
            violations.push("error-free parity runs must complete".to_string());
        }
        for (id, name, _) in sinks {
            if det.sink_output(*id) != threaded.sink_output(*id) {
                violations.push(format!(
                    "sink '{name}' diverges between executors ({} transport): det {} items, \
                     threaded {}",
                    self.transport.label(),
                    det.sink_output(*id).len(),
                    threaded.sink_output(*id).len()
                ));
            }
        }
        if det.queues.header_pushes != threaded.queues.header_pushes {
            violations.push(format!(
                "header pushes diverge: det {}, threaded {}",
                det.queues.header_pushes, threaded.queues.header_pushes
            ));
        }
        if det.queues.header_pops != threaded.queues.header_pops {
            violations.push(format!(
                "header pops diverge: det {}, threaded {}",
                det.queues.header_pops, threaded.queues.header_pops
            ));
        }
        Ok(violations)
    }

    fn check_faulted(
        &self,
        demand: u64,
        sinks: &[(NodeId, String, usize)],
    ) -> Result<Vec<String>, String> {
        let guarded = self.config(Protection::commguard(), true, demand);
        let mut violations = Vec::new();
        match self.executor {
            ExecutorKind::Deterministic => {
                let report = match run(bind_program(&self.spec)?, &guarded) {
                    Ok(r) => r,
                    Err(e) => return Ok(vec![format!("guarded deterministic run errored: {e}")]),
                };
                if !report.completed {
                    violations.push("guarded run hit the round cap".to_string());
                }
                for (id, name, want) in sinks {
                    let got = report.sink_output(*id).len();
                    if got != *want {
                        violations.push(format!(
                            "guarded sink '{name}' length {got} != scheduled {want}"
                        ));
                    }
                }
                // Each in-port decides pad vs discard at most once per
                // frame transition (plus start/finish), and a discard
                // can split across a frame's header+data.
                let subops = report.total_subops();
                let realign = subops.pad_events + subops.discard_events;
                let bound = (self.frames + 2) * self.spec.edges.len() as u64 * 2;
                if realign > bound {
                    violations.push(format!(
                        "realignment events {realign} exceed structural bound {bound}"
                    ));
                }
            }
            ExecutorKind::Threaded => {
                let report =
                    match run_parallel_with(bind_program(&self.spec)?, &guarded, self.transport) {
                        Ok(r) => r,
                        Err(e) => {
                            return Ok(vec![format!(
                                "guarded threaded run ({}) errored instead of recovering: {e}",
                                self.transport.label()
                            )])
                        }
                    };
                if !report.completed {
                    violations.push("guarded threaded run did not complete".to_string());
                }
                for (id, name, want) in sinks {
                    let got = report.sink_output(*id).len();
                    if got != *want {
                        violations.push(format!(
                            "guarded sink '{name}' length {got} != scheduled {want}"
                        ));
                    }
                }
                // Headers are pushed once per frame boundary, never per
                // retry attempt: compare against a fault-free guarded
                // run of the same graph on the deterministic executor.
                let clean = self.config(Protection::commguard(), false, demand);
                match run(bind_program(&self.spec)?, &clean) {
                    Ok(golden) => {
                        if report.queues.header_pushes != golden.queues.header_pushes {
                            violations.push(format!(
                                "header conservation violated: {} pushed, golden {}",
                                report.queues.header_pushes, golden.queues.header_pushes
                            ));
                        }
                    }
                    Err(e) => violations.push(format!("fault-free golden run errored: {e}")),
                }
                let bound =
                    u64::from(FUZZ_RETRY_BUDGET) * self.frames * self.spec.nodes.len() as u64;
                if report.watchdog.frame_retries > bound {
                    violations.push(format!(
                        "frame retries {} exceed budget bound {bound}",
                        report.watchdog.frame_retries
                    ));
                }
            }
        }
        Ok(violations)
    }
}

/// Binds deterministic work functions to a generated graph: sources
/// count up through a per-node salt, filters fold their inputs into
/// their push rate. All work is pure per firing (sources keep only
/// their running counter), so frame re-execution is safe.
pub fn bind_program(spec: &GraphSpec) -> Result<Program, String> {
    let graph = spec.to_graph().map_err(|e| e.to_string())?;
    let mut p = Program::new(graph);
    for (i, node) in spec.nodes.iter().enumerate() {
        let id = NodeId::from_index(i);
        let out_push = spec.edges.iter().find(|e| e.src == i).map(|e| e.push);
        match node.kind {
            NodeKind::Source => {
                let push =
                    out_push.ok_or_else(|| format!("source '{}' has no output", node.name))?;
                let salt = (i as u32).wrapping_mul(0x9e37);
                let mut next = 0u32;
                p.set_source(id, move |out| {
                    for _ in 0..push {
                        out.push(next ^ salt);
                        next = next.wrapping_add(1);
                    }
                });
            }
            NodeKind::Filter => {
                let push =
                    out_push.ok_or_else(|| format!("filter '{}' has no output", node.name))?;
                let salt = (i as u32).wrapping_mul(1013);
                p.set_filter(id, move |inp, out| {
                    let sum: u32 = inp[0]
                        .iter()
                        .fold(0u32, |a, &b| a.rotate_left(1).wrapping_add(b));
                    for k in 0..push as usize {
                        let v = inp[0].get(k % inp[0].len().max(1)).copied().unwrap_or(sum);
                        out[0].push(v.wrapping_add(sum).wrapping_add(salt));
                    }
                });
            }
            // Splitters, joiners and sinks are structural: the executors
            // move their items without user work functions.
            _ => {}
        }
    }
    Ok(p)
}

// ---------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------

/// Shrink order: fewer nodes beats fewer edges beats fewer frames beats
/// smaller rates beats sparser faults (higher MTBE).
fn size(case: &ReproCase) -> (usize, usize, u64, u64, u64) {
    let rate_sum: u64 = case
        .spec
        .edges
        .iter()
        .map(|e| u64::from(e.push) + u64::from(e.pop))
        .sum();
    (
        case.spec.nodes.len(),
        case.spec.edges.len(),
        case.frames,
        rate_sum,
        u64::MAX - case.mtbe,
    )
}

/// Rebuilds a spec without the nodes in `drop` (indices), remapping the
/// surviving edges and appending `extra` (in old indices). Edges
/// touching a dropped node are removed.
fn drop_nodes(spec: &GraphSpec, drop: &[usize], extra: &[EdgeSpec]) -> GraphSpec {
    let mut remap = vec![usize::MAX; spec.nodes.len()];
    let mut nodes = Vec::new();
    for (i, n) in spec.nodes.iter().enumerate() {
        if !drop.contains(&i) {
            remap[i] = nodes.len();
            nodes.push(n.clone());
        }
    }
    let edges = spec
        .edges
        .iter()
        .chain(extra)
        .filter(|e| remap[e.src] != usize::MAX && remap[e.dst] != usize::MAX)
        .map(|e| EdgeSpec {
            src: remap[e.src],
            dst: remap[e.dst],
            push: e.push,
            pop: e.pop,
        })
        .collect();
    GraphSpec {
        name: format!("{}-min", spec.name.trim_end_matches("-min")),
        nodes,
        edges,
    }
}

/// Splices out a 1-in/1-out filter, connecting its neighbours with
/// (upstream push, downstream pop).
fn splice_filter(spec: &GraphSpec, idx: usize) -> Option<GraphSpec> {
    if spec.nodes[idx].kind != NodeKind::Filter {
        return None;
    }
    let ins: Vec<&EdgeSpec> = spec.edges.iter().filter(|e| e.dst == idx).collect();
    let outs: Vec<&EdgeSpec> = spec.edges.iter().filter(|e| e.src == idx).collect();
    let (&inc, &out) = match (ins.as_slice(), outs.as_slice()) {
        ([a], [b]) => (a, b),
        _ => return None,
    };
    let bridge = EdgeSpec {
        src: inc.src,
        dst: out.dst,
        push: inc.push,
        pop: out.pop,
    };
    Some(drop_nodes(spec, &[idx], &[bridge]))
}

/// Walks a splitjoin branch from `start` (the split's out-edge target)
/// through 1-in/1-out filters until a joiner; returns the intermediate
/// node indices and the joiner.
fn walk_branch(spec: &GraphSpec, start: usize) -> Option<(Vec<usize>, usize)> {
    let mut chain = Vec::new();
    let mut cur = start;
    loop {
        match spec.nodes[cur].kind {
            NodeKind::JoinRoundRobin => return Some((chain, cur)),
            NodeKind::Filter => {
                let outs: Vec<&EdgeSpec> = spec.edges.iter().filter(|e| e.src == cur).collect();
                let [out] = outs.as_slice() else { return None };
                chain.push(cur);
                cur = out.dst;
            }
            _ => return None,
        }
    }
}

/// Removes one branch of a ≥3-way splitjoin, rebalancing the split's
/// in-pop (round-robin splits) and the join's out-push.
fn remove_branch(spec: &GraphSpec, split: usize, branch_edge: usize) -> Option<GraphSpec> {
    let e = &spec.edges[branch_edge];
    if e.src != split {
        return None;
    }
    let split_outs = spec.edges.iter().filter(|x| x.src == split).count();
    if split_outs < 3 {
        return None;
    }
    let (chain, join) = walk_branch(spec, e.dst)?;
    let join_ins = spec.edges.iter().filter(|x| x.dst == join).count();
    if join_ins < 3 {
        return None;
    }
    // Pop rate the join loses: the last edge of the branch entering it.
    let last = chain.last().copied().unwrap_or(split);
    let lost_pop = spec
        .edges
        .iter()
        .find(|x| x.dst == join && (x.src == last))?
        .pop;
    let mut adjusted = spec.clone();
    // Drop the split→branch edge even when the branch is empty (a
    // direct split→join edge), where `drop_nodes` would keep it.
    adjusted.edges.remove(branch_edge);
    for edge in &mut adjusted.edges {
        if edge.dst == split && spec.nodes[split].kind == NodeKind::SplitRoundRobin {
            edge.pop = edge.pop.checked_sub(e.push).filter(|&p| p > 0)?;
        }
        if edge.src == join {
            edge.push = edge.push.checked_sub(lost_pop).filter(|&p| p > 0)?;
        }
    }
    Some(drop_nodes(&adjusted, &chain, &[]))
}

/// Dissolves a 2-way splitjoin, keeping one branch as a plain chain.
fn dissolve_splitjoin(spec: &GraphSpec, split: usize, keep_edge: usize) -> Option<GraphSpec> {
    let e = &spec.edges[keep_edge];
    if e.src != split
        || !matches!(
            spec.nodes[split].kind,
            NodeKind::SplitDuplicate | NodeKind::SplitRoundRobin
        )
    {
        return None;
    }
    let outs: Vec<usize> = (0..spec.edges.len())
        .filter(|&i| spec.edges[i].src == split)
        .collect();
    if outs.len() != 2 {
        return None;
    }
    let (kept_chain, join) = walk_branch(spec, e.dst)?;
    let other_edge = outs.into_iter().find(|&i| i != keep_edge)?;
    let (other_chain, other_join) = walk_branch(spec, spec.edges[other_edge].dst)?;
    if join != other_join || spec.edges.iter().filter(|x| x.dst == join).count() != 2 {
        return None;
    }
    let pre = spec.edges.iter().find(|x| x.dst == split)?;
    let post = spec.edges.iter().find(|x| x.src == join)?;
    let mut extra = Vec::new();
    if kept_chain.is_empty() {
        // Direct split→join branch: bridge straight across.
        extra.push(EdgeSpec {
            src: pre.src,
            dst: post.dst,
            push: pre.push,
            pop: post.pop,
        });
    } else {
        let entry = kept_chain[0];
        let exit = *kept_chain.last().expect("non-empty chain");
        let entry_pop = spec.edges.iter().find(|x| x.dst == entry)?.pop;
        let exit_push = spec.edges.iter().find(|x| x.src == exit)?.push;
        extra.push(EdgeSpec {
            src: pre.src,
            dst: entry,
            push: pre.push,
            pop: entry_pop,
        });
        extra.push(EdgeSpec {
            src: exit,
            dst: post.dst,
            push: exit_push,
            pop: post.pop,
        });
    }
    let mut dropped = other_chain;
    dropped.push(split);
    dropped.push(join);
    Some(drop_nodes(spec, &dropped, &extra))
}

/// Generates shrink candidates for `best`, cheapest-win first.
fn candidates(best: &ReproCase) -> Vec<ReproCase> {
    let mut out = Vec::new();
    let mut with_spec = |spec: GraphSpec| {
        out.push(ReproCase {
            spec,
            ..best.clone()
        });
    };
    for i in 0..best.spec.nodes.len() {
        if let Some(s) = splice_filter(&best.spec, i) {
            with_spec(s);
        }
    }
    for split in 0..best.spec.nodes.len() {
        for edge in 0..best.spec.edges.len() {
            if let Some(s) = remove_branch(&best.spec, split, edge) {
                with_spec(s);
            }
            if let Some(s) = dissolve_splitjoin(&best.spec, split, edge) {
                with_spec(s);
            }
        }
    }
    for frames in [1, best.frames / 2, best.frames - 1] {
        if frames >= 1 && frames < best.frames {
            out.push(ReproCase {
                frames,
                ..best.clone()
            });
        }
    }
    for i in 0..best.spec.edges.len() {
        let e = &best.spec.edges[i];
        if e.push.is_multiple_of(2) && e.pop.is_multiple_of(2) {
            let mut spec = best.spec.clone();
            spec.edges[i].push /= 2;
            spec.edges[i].pop /= 2;
            out.push(ReproCase {
                spec,
                ..best.clone()
            });
        } else if e.push == e.pop && e.push > 1 {
            let mut spec = best.spec.clone();
            spec.edges[i].push = 1;
            spec.edges[i].pop = 1;
            out.push(ReproCase {
                spec,
                ..best.clone()
            });
        }
    }
    if best.oracle == Oracle::Faulted && best.mtbe <= 1 << 20 {
        out.push(ReproCase {
            mtbe: best.mtbe * 4,
            ..best.clone()
        });
    }
    out
}

/// Greedily shrinks a failing case: a candidate is accepted when it is
/// strictly smaller, still a valid schedulable graph, and still fails
/// its oracle. Returns the minimized case, its violations, and how many
/// candidate checks were spent (bounded by `budget`).
pub fn minimize(case: &ReproCase, budget: u64) -> (ReproCase, Vec<String>, u64) {
    let mut best = case.clone();
    let mut best_violations = best.check().ok().unwrap_or_default();
    let mut spent = 0u64;
    let mut improved = true;
    while improved && spent < budget {
        improved = false;
        for cand in candidates(&best) {
            if spent >= budget {
                break;
            }
            if size(&cand) >= size(&best) || cand.spec.build_validated().is_err() {
                continue;
            }
            spent += 1;
            if let Ok(violations) = cand.check() {
                if !violations.is_empty() {
                    best = cand;
                    best_violations = violations;
                    improved = true;
                    break;
                }
            }
        }
    }
    (best, best_violations, spent)
}

// ---------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------

/// Serializes a case (with its verdict) as a self-contained artifact.
pub fn case_to_json(case: &ReproCase, verdict: &str, violations: &[String]) -> Json {
    let nodes: Vec<Json> = case
        .spec
        .nodes
        .iter()
        .map(|n| {
            let mut j = Json::object();
            j.set("name", n.name.as_str()).set("kind", n.kind.label());
            j
        })
        .collect();
    let edges: Vec<Json> = case
        .spec
        .edges
        .iter()
        .map(|e| {
            let mut j = Json::object();
            j.set("src", e.src)
                .set("dst", e.dst)
                .set("push", e.push)
                .set("pop", e.pop);
            j
        })
        .collect();
    let mut graph = Json::object();
    graph
        .set("name", case.spec.name.as_str())
        .set("nodes", nodes)
        .set("edges", edges);
    let mut doc = Json::object();
    doc.set("schema", REPRO_SCHEMA)
        .set("verdict", verdict)
        .set("oracle", case.oracle.label())
        .set("executor", case.executor.label())
        .set("transport", case.transport.label())
        .set("fault_class", case.class.label())
        .set("mtbe_instructions", case.mtbe)
        .set("seed", case.seed)
        .set("frames", case.frames)
        .set("queue_capacity", case.queue_capacity)
        .set(
            "violations",
            violations
                .iter()
                .map(|v| Json::from(v.as_str()))
                .collect::<Vec<_>>(),
        )
        .set("graph", graph);
    doc
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn str_field(doc: &Json, key: &str) -> Result<String, String> {
    field(doc, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    field(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an unsigned integer"))
}

/// Parses an artifact back into a case plus its recorded verdict.
pub fn case_from_json(doc: &Json) -> Result<(ReproCase, String), String> {
    let schema = str_field(doc, "schema")?;
    if schema != REPRO_SCHEMA {
        return Err(format!(
            "unsupported schema `{schema}` (expected {REPRO_SCHEMA})"
        ));
    }
    let graph = field(doc, "graph")?;
    let nodes = field(graph, "nodes")?
        .as_array()
        .ok_or("graph.nodes is not an array")?
        .iter()
        .map(|n| {
            let kind = str_field(n, "kind")?;
            Ok(NodeSpec {
                name: str_field(n, "name")?,
                kind: NodeKind::parse(&kind)
                    .ok_or_else(|| format!("unknown node kind `{kind}`"))?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let edges = field(graph, "edges")?
        .as_array()
        .ok_or("graph.edges is not an array")?
        .iter()
        .map(|e| {
            Ok(EdgeSpec {
                src: u64_field(e, "src")? as usize,
                dst: u64_field(e, "dst")? as usize,
                push: u32::try_from(u64_field(e, "push")?).map_err(|_| "push out of range")?,
                pop: u32::try_from(u64_field(e, "pop")?).map_err(|_| "pop out of range")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let transport_label = str_field(doc, "transport")?;
    let case = ReproCase {
        spec: GraphSpec {
            name: str_field(graph, "name")?,
            nodes,
            edges,
        },
        oracle: Oracle::parse(&str_field(doc, "oracle")?)?,
        seed: u64_field(doc, "seed")?,
        frames: u64_field(doc, "frames")?,
        queue_capacity: u64_field(doc, "queue_capacity")? as usize,
        executor: ExecutorKind::parse(&str_field(doc, "executor")?)?,
        transport: ParTransport::parse(&transport_label)
            .ok_or_else(|| format!("unknown transport `{transport_label}`"))?,
        class: FaultClass::parse(&str_field(doc, "fault_class")?)?,
        mtbe: u64_field(doc, "mtbe_instructions")?,
    };
    Ok((case, str_field(doc, "verdict")?))
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Writes a case's artifact into `dir`, returning the path.
pub fn write_artifact(
    dir: &Path,
    case: &ReproCase,
    verdict: &str,
    violations: &[String],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!(
        "repro_{}_{}_{}_{}.json",
        case.oracle.label(),
        slug(case.class.label()),
        slug(&case.spec.name),
        case.seed
    ));
    std::fs::write(&path, case_to_json(case, verdict, violations).pretty())?;
    Ok(path)
}

/// The result of replaying one artifact.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Verdict the artifact recorded ("pass" or "fail").
    pub recorded_verdict: String,
    /// Verdict of the fresh run.
    pub verdict: String,
    /// Violations of the fresh run.
    pub violations: Vec<String>,
    /// Whether fresh and recorded verdicts agree.
    pub matched: bool,
}

/// Re-executes an artifact exactly and compares verdicts.
pub fn replay_file(path: &str) -> Result<Replay, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let (case, recorded) = case_from_json(&doc).map_err(|e| format!("{path}: {e}"))?;
    let violations = case.check().map_err(|e| format!("{path}: {e}"))?;
    let verdict = if violations.is_empty() {
        "pass"
    } else {
        "fail"
    };
    Ok(Replay {
        matched: verdict == recorded,
        recorded_verdict: recorded,
        verdict: verdict.to_string(),
        violations,
    })
}

// ---------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------

/// Configuration of one fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzSpec {
    /// Number of random graphs to generate and check.
    pub count: u64,
    /// Base seed; graph `i` derives its own seed from `seed` and `i`.
    pub seed: u64,
    /// Steady-state frames per run.
    pub frames: u64,
    /// Executor for the faulted oracle (parity always runs both).
    pub executor: ExecutorKind,
    /// Transport for faulted threaded runs.
    pub transport: ParTransport,
    /// Transports swept by the parity oracle.
    pub parity_transports: Vec<ParTransport>,
    /// Fault classes swept by the faulted oracle.
    pub classes: Vec<FaultClass>,
    /// Mean instructions between errors for faulted runs.
    pub mtbe: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Where failure artifacts go (`None` keeps them in memory only).
    pub repro_dir: Option<String>,
    /// Generator shape limits.
    pub gen: GenConfig,
}

impl Default for FuzzSpec {
    fn default() -> Self {
        FuzzSpec {
            count: 25,
            seed: 1,
            frames: 8,
            executor: ExecutorKind::Deterministic,
            transport: ParTransport::LockFree,
            parity_transports: vec![
                ParTransport::PerItem,
                ParTransport::Batched,
                ParTransport::LockFree,
            ],
            classes: FaultClass::all().to_vec(),
            mtbe: 256,
            threads: 0,
            repro_dir: Some("fuzz_repros".to_string()),
            gen: GenConfig::default(),
        }
    }
}

impl FuzzSpec {
    /// Checks run per generated graph.
    pub fn checks_per_graph(&self) -> usize {
        1 + self.parity_transports.len() + self.classes.len()
    }
}

/// One failure, after minimization.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The minimized reproduction.
    pub case: ReproCase,
    /// Violations of the minimized case.
    pub violations: Vec<String>,
    /// Size of the case before shrinking, as (nodes, edges, frames).
    pub original: (usize, usize, u64),
    /// Candidate checks the shrinking loop spent.
    pub shrink_checks: u64,
    /// Artifact path, when `repro_dir` was set and the write succeeded.
    pub artifact: Option<String>,
}

/// Everything one generated graph produced.
#[derive(Debug, Clone)]
pub struct FuzzCaseReport {
    /// Graph index within the campaign.
    pub index: u64,
    /// The derived generator seed.
    pub graph_seed: u64,
    /// Generated graph name.
    pub name: String,
    /// Node count of the generated graph.
    pub nodes: usize,
    /// Edge count of the generated graph.
    pub edges: usize,
    /// Queue capacity the graph ran with.
    pub queue_capacity: usize,
    /// Oracle checks executed.
    pub checks: u64,
    /// Failures found (after minimization), usually empty.
    pub failures: Vec<FuzzFailure>,
}

/// A finished fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The campaign configuration.
    pub spec: FuzzSpec,
    /// One report per generated graph, in index order.
    pub cases: Vec<FuzzCaseReport>,
    /// Resolved worker count.
    pub workers: usize,
}

impl FuzzReport {
    /// Total oracle checks across the campaign.
    pub fn total_checks(&self) -> u64 {
        self.cases.iter().map(|c| c.checks).sum()
    }

    /// All failures across the campaign.
    pub fn failures(&self) -> Vec<&FuzzFailure> {
        self.cases.iter().flat_map(|c| &c.failures).collect()
    }

    /// Failures that could not be written as artifacts (these fail the
    /// CLI: every failure must leave a replayable reproduction).
    pub fn unminimized(&self) -> usize {
        self.failures()
            .iter()
            .filter(|f| self.spec.repro_dir.is_some() && f.artifact.is_none())
            .count()
    }
}

/// SplitMix-derives the generator seed for graph `index`.
fn graph_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0x2545_f491_4f6c_dd1d));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates and checks graph `index`, minimizing any failure.
fn run_case(spec: &FuzzSpec, index: u64) -> FuzzCaseReport {
    let seed = graph_seed(spec.seed, index);
    let graph = generate(seed, &spec.gen);
    let (_, profile) = graph
        .build_validated()
        .expect("generated graphs always validate");
    // Alternate near-full and near-empty steady states: tight capacity
    // is exactly the hottest edge's demand, loose leaves headroom.
    let demand = profile.queue_demand;
    let queue_capacity = if seed.is_multiple_of(2) {
        demand.max(8) as usize
    } else {
        (demand * 4).max(64) as usize
    };
    let base = ReproCase {
        spec: graph.clone(),
        oracle: Oracle::Golden,
        seed,
        frames: spec.frames,
        queue_capacity,
        executor: spec.executor,
        transport: spec.transport,
        class: FaultClass::Baseline,
        mtbe: spec.mtbe,
    };
    let mut cases = vec![base.clone()];
    for &transport in &spec.parity_transports {
        cases.push(ReproCase {
            oracle: Oracle::Parity,
            transport,
            ..base.clone()
        });
    }
    for &class in &spec.classes {
        cases.push(ReproCase {
            oracle: Oracle::Faulted,
            class,
            ..base.clone()
        });
    }

    let mut report = FuzzCaseReport {
        index,
        graph_seed: seed,
        name: graph.name.clone(),
        nodes: graph.nodes.len(),
        edges: graph.edges.len(),
        queue_capacity,
        checks: 0,
        failures: Vec::new(),
    };
    for case in cases {
        report.checks += 1;
        let violations = case
            .check()
            .expect("generated cases always have valid specs");
        if violations.is_empty() {
            continue;
        }
        let original = (case.spec.nodes.len(), case.spec.edges.len(), case.frames);
        let (minimized, min_violations, shrink_checks) = minimize(&case, SHRINK_BUDGET);
        let artifact = spec.repro_dir.as_ref().and_then(|dir| {
            write_artifact(Path::new(dir), &minimized, "fail", &min_violations)
                .map_err(|e| eprintln!("fuzz: cannot write artifact: {e}"))
                .ok()
                .map(|p| p.to_string_lossy().into_owned())
        });
        report.failures.push(FuzzFailure {
            case: minimized,
            violations: min_violations,
            original,
            shrink_checks,
            artifact,
        });
    }
    report
}

/// Runs the whole fuzz campaign on `spec.threads` workers.
pub fn run_fuzz(spec: &FuzzSpec) -> FuzzReport {
    let threads = if spec.threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        spec.threads
    }
    .min(spec.count.max(1) as usize);

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<FuzzCaseReport>>> = Mutex::new(vec![None; spec.count as usize]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= spec.count as usize {
                    break;
                }
                let report = run_case(spec, i as u64);
                results.lock().expect("no poisoned workers")[i] = Some(report);
            });
        }
    });
    FuzzReport {
        spec: spec.clone(),
        cases: results
            .into_inner()
            .expect("scope joined all workers")
            .into_iter()
            .map(|r| r.expect("every case ran"))
            .collect(),
        workers: threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> FuzzSpec {
        FuzzSpec {
            count: 4,
            frames: 4,
            parity_transports: vec![ParTransport::LockFree],
            classes: vec![FaultClass::Baseline, FaultClass::HeaderCorruption],
            repro_dir: None,
            ..FuzzSpec::default()
        }
    }

    #[test]
    fn golden_parity_and_faulted_oracles_pass_on_generated_graphs() {
        let report = run_fuzz(&quick_spec());
        assert_eq!(report.cases.len(), 4);
        assert_eq!(report.total_checks(), 4 * 4);
        let failures = report.failures();
        assert!(
            failures.is_empty(),
            "unexpected fuzz failures: {:?}",
            failures
                .iter()
                .map(|f| (&f.case.spec.name, &f.violations))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let case = ReproCase {
            spec: generate(7, &GenConfig::default()),
            oracle: Oracle::Faulted,
            seed: 7,
            frames: 5,
            queue_capacity: 64,
            executor: ExecutorKind::Threaded,
            transport: ParTransport::Batched,
            class: FaultClass::PointerCorruption,
            mtbe: 2048,
        };
        let doc = case_to_json(&case, "fail", &["boom".to_string()]);
        let parsed = Json::parse(&doc.pretty()).expect("artifact parses");
        let (back, verdict) = case_from_json(&parsed).expect("artifact decodes");
        assert_eq!(back, case);
        assert_eq!(verdict, "fail");
    }

    #[test]
    fn replay_detects_verdict_mismatch_and_agreement() {
        let dir = std::env::temp_dir().join(format!("cg-fuzz-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let case = ReproCase {
            spec: generate(3, &GenConfig::default()),
            oracle: Oracle::Golden,
            seed: 3,
            frames: 3,
            queue_capacity: 4096,
            executor: ExecutorKind::Deterministic,
            transport: ParTransport::LockFree,
            class: FaultClass::Baseline,
            mtbe: 256,
        };
        let violations = case.check().expect("valid spec");
        assert!(violations.is_empty(), "golden must pass: {violations:?}");
        let good = write_artifact(&dir, &case, "pass", &[]).unwrap();
        let replay = replay_file(good.to_str().unwrap()).unwrap();
        assert!(replay.matched);
        assert_eq!(replay.verdict, "pass");
        // A wrong recorded verdict is caught.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, case_to_json(&case, "fail", &[]).pretty()).unwrap();
        let replay = replay_file(bad.to_str().unwrap()).unwrap();
        assert!(!replay.matched);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A deterministic failure source for minimizer tests: a fan-out
    /// graph whose queue capacity is below its steady-state demand
    /// fails its run with `CapacityExceeded` for as long as the graph
    /// keeps any splitter/joiner.
    fn capacity_starved_case() -> ReproCase {
        // Find a generated graph with a splitjoin and real demand.
        let (seed, spec) = (0..200u64)
            .map(|s| (s, generate(s, &GenConfig::default())))
            .find(|(_, g)| {
                g.nodes
                    .iter()
                    .any(|n| matches!(n.kind, NodeKind::SplitDuplicate | NodeKind::SplitRoundRobin))
                    && g.build_validated()
                        .map(|(_, p)| p.queue_demand > 12 && g.nodes.len() > 6)
                        .unwrap_or(false)
            })
            .expect("some seed yields a demanding splitjoin");
        ReproCase {
            spec,
            oracle: Oracle::Golden,
            seed,
            frames: 6,
            queue_capacity: 8,
            executor: ExecutorKind::Deterministic,
            transport: ParTransport::LockFree,
            class: FaultClass::Baseline,
            mtbe: 256,
        }
    }

    #[test]
    fn minimizer_shrinks_failing_cases_and_preserves_the_failure() {
        let case = capacity_starved_case();
        let before = case.check().expect("valid spec");
        assert!(!before.is_empty(), "starved case must fail");
        let (min, violations, spent) = minimize(&case, SHRINK_BUDGET);
        assert!(!violations.is_empty(), "minimized case still fails");
        assert!(spent > 0, "shrinking actually ran candidates");
        assert!(
            size(&min) < size(&case),
            "minimized {:?} not smaller than {:?}",
            size(&min),
            size(&case)
        );
        assert!(min.spec.build_validated().is_ok());
        // The shrunk graph still contains the structure the failure
        // needs: capacity checks only fire on fan-in/fan-out graphs.
        assert!(min
            .spec
            .nodes
            .iter()
            .any(|n| !matches!(n.kind, NodeKind::Source | NodeKind::Filter | NodeKind::Sink)));
    }

    #[test]
    fn graph_seeds_are_deterministic_and_spread() {
        assert_eq!(graph_seed(1, 0), graph_seed(1, 0));
        assert_ne!(graph_seed(1, 0), graph_seed(1, 1));
        assert_ne!(graph_seed(1, 0), graph_seed(2, 0));
    }

    #[test]
    fn oracle_labels_round_trip() {
        for o in [Oracle::Golden, Oracle::Parity, Oracle::Faulted] {
            assert_eq!(Oracle::parse(o.label()), Ok(o));
        }
        assert!(Oracle::parse("nope").is_err());
    }
}
