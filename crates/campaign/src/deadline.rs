//! Deadline sweep: quality-vs-MTBE-vs-deadline surfaces over the
//! application suite.
//!
//! Each cell runs one benchmark app on the deterministic executor under
//! CommGuard, paced at the app's own intrinsic cadence, with the frame
//! deadline set to a multiple of the app's calibrated base latency. The
//! sweep answers the paper-style question "how much output quality does
//! a real-time budget cost under faults?": a deadline at 1× the
//! intrinsic latency forces the degrade ladder to discharge frames that
//! faults push over budget, while a generous multiple lets recovery
//! re-execute in place — the recorded quality (dB vs the fault-free
//! reference) traces the surface between the two.
//!
//! Calibration is self-contained: a fault-free paced probe per app, with
//! the period set from the app's unpaced cadence (so the schedule never
//! backlogs) and an unreachable deadline, measures the intrinsic p99
//! frame latency in scheduler rounds. Everything downstream is expressed
//! in multiples of that number, which keeps the sweep meaningful across
//! apps whose pipelines differ by orders of magnitude in depth.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cg_apps::{BenchApp, Size, Workload};
use cg_fault::{FaultClass, Mtbe};
use cg_runtime::{run, Pacing, PacingReport, SimConfig};
use commguard::Protection;

/// The axes of a deadline sweep.
#[derive(Debug, Clone)]
pub struct DeadlineSweepSpec {
    /// Benchmark apps to sweep (default: the full suite).
    pub apps: Vec<BenchApp>,
    /// Fault classes to inject.
    pub classes: Vec<FaultClass>,
    /// Error rates (mean instructions between errors).
    pub mtbes: Vec<Mtbe>,
    /// Deadline budgets, as multiples of the app's calibrated base
    /// latency. `1` is the tightest honest schedule; large multiples
    /// approximate self-timed execution.
    pub deadline_mults: Vec<u64>,
    /// Seeds per cell; runs use seeds `1..=seeds`.
    pub seeds: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl Default for DeadlineSweepSpec {
    fn default() -> Self {
        DeadlineSweepSpec {
            apps: BenchApp::all().to_vec(),
            classes: FaultClass::all().to_vec(),
            mtbes: vec![
                Mtbe::instructions(256),
                Mtbe::instructions(2048),
                Mtbe::instructions(16_384),
            ],
            deadline_mults: vec![1, 2, 8],
            seeds: 3,
            threads: 0,
        }
    }
}

impl DeadlineSweepSpec {
    /// A fast smoke-test sweep (CI / `--quick`).
    pub fn quick() -> Self {
        DeadlineSweepSpec {
            mtbes: vec![Mtbe::instructions(2048)],
            deadline_mults: vec![1, 8],
            seeds: 1,
            ..Default::default()
        }
    }

    /// Total number of runs in the sweep.
    pub fn total_runs(&self) -> usize {
        self.apps.len()
            * self.classes.len()
            * self.mtbes.len()
            * self.deadline_mults.len()
            * self.seeds as usize
    }

    /// Flattens the cross product into per-run cells.
    pub fn cells(&self) -> Vec<DeadlineCell> {
        let mut out = Vec::with_capacity(self.total_runs());
        for &app in &self.apps {
            for &class in &self.classes {
                for &mtbe in &self.mtbes {
                    for &mult in &self.deadline_mults {
                        for seed in 1..=self.seeds {
                            out.push(DeadlineCell {
                                app,
                                class,
                                mtbe,
                                mult,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// One point of the deadline sweep.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineCell {
    /// Benchmark app.
    pub app: BenchApp,
    /// Fault class injected.
    pub class: FaultClass,
    /// Error rate.
    pub mtbe: Mtbe,
    /// Deadline budget as a multiple of the app's base latency.
    pub mult: u64,
    /// Run seed.
    pub seed: u64,
}

/// The result of one paced app run.
#[derive(Debug, Clone)]
pub struct DeadlineRecord {
    /// The sweep cell this run belongs to.
    pub cell: DeadlineCell,
    /// The app's calibrated fault-free p99 frame latency (rounds).
    pub base_latency: u64,
    /// Pacing period the run used (rounds).
    pub period: u64,
    /// Frame deadline the run used (rounds): `mult × base_latency`.
    pub deadline: u64,
    /// Whether the run finished before the round cap.
    pub completed: bool,
    /// Output quality in dB against the fault-free reference (PSNR for
    /// image apps, SNR otherwise).
    pub quality_db: f64,
    /// Faults injected.
    pub faults: u64,
    /// The run's full deadline accounting.
    pub pacing: PacingReport,
    /// Hard-invariant violations (always empty for a passing sweep).
    pub violations: Vec<String>,
}

/// Everything a finished deadline sweep produced.
#[derive(Debug, Clone)]
pub struct DeadlineReport {
    /// The sweep that was run.
    pub spec: DeadlineSweepSpec,
    /// One record per run, in cell order.
    pub runs: Vec<DeadlineRecord>,
    /// Worker threads the sweep actually ran on.
    pub workers: usize,
}

impl DeadlineReport {
    /// All invariant violations across the sweep.
    pub fn violations(&self) -> Vec<(&DeadlineRecord, &str)> {
        self.runs
            .iter()
            .flat_map(|r| r.violations.iter().map(move |v| (r, v.as_str())))
            .collect()
    }
}

/// Calibrates one app's intrinsic frame latency: a fault-free paced
/// probe whose period matches the app's unpaced cadence (no backlog)
/// and whose deadline is unreachable, measured at p99 in rounds.
fn calibrate(app: BenchApp) -> u64 {
    let w = Workload::new(app, Size::Small);
    let (p, _) = w.build();
    let unpaced = run(p, &SimConfig::error_free(w.frames())).expect("calibration run");
    assert!(unpaced.completed, "unpaced calibration must complete");
    let cadence = (unpaced.rounds / w.frames().max(1)).max(1);
    let (p, _) = w.build();
    let cfg = SimConfig::error_free(w.frames()).pacing(Pacing::Paced {
        period: cadence,
        deadline: unpaced.rounds.max(16) * 4,
        slo: unpaced.rounds.max(16) * 4,
    });
    let probe = run(p, &cfg).expect("paced calibration run");
    assert!(probe.completed, "paced calibration must complete");
    let pace = probe.pacing.expect("paced run reports pacing");
    pace.p99_latency().max(1)
}

/// Executes one sweep cell: the app under faults at the cell's budget.
fn run_cell(cell: DeadlineCell, base_latency: u64) -> DeadlineRecord {
    let w = Workload::new(cell.app, Size::Small);
    let (p, _) = w.build();
    let period = base_latency;
    let deadline = base_latency * cell.mult;
    let cfg = SimConfig {
        fault_class: cell.class,
        ..SimConfig::with_errors(w.frames(), Protection::commguard(), cell.mtbe, cell.seed)
    }
    .pacing(Pacing::Paced {
        period,
        deadline,
        slo: deadline,
    });
    let report = run(p, &cfg).expect("sweep runs never error at runtime");

    let sink = report.sink_output(w.sink());
    let quality_db = w.quality_db(sink);
    let faults = report.total_faults().total();
    let mut violations = Vec::new();
    if !report.completed {
        violations.push("paced app run hit the round cap".to_string());
    }
    if sink.len() != w.reference().len() {
        violations.push(format!(
            "sink length {} != reference {} (pads yes, truncation no)",
            sink.len(),
            w.reference().len()
        ));
    }
    let pacing = report.pacing.unwrap_or_else(|| {
        violations.push("paced run carries no pacing report".to_string());
        PacingReport::for_pacing(
            Pacing::Paced {
                period,
                deadline,
                slo: deadline,
            },
            "rounds",
        )
        .expect("paced schedule yields a report")
    });
    if pacing.frames_observed() != w.frames() {
        violations.push(format!(
            "pacing accounted {} of {} frames",
            pacing.frames_observed(),
            w.frames()
        ));
    }

    DeadlineRecord {
        cell,
        base_latency,
        period,
        deadline,
        completed: report.completed,
        quality_db,
        faults,
        pacing,
        violations,
    }
}

/// Runs the whole deadline sweep on `spec.threads` workers.
pub fn run_deadline_sweep(spec: &DeadlineSweepSpec) -> DeadlineReport {
    // One calibration per app, shared by every cell.
    let bases: Vec<(BenchApp, u64)> = spec.apps.iter().map(|&a| (a, calibrate(a))).collect();
    let base_for = |app: BenchApp| -> u64 {
        bases
            .iter()
            .find(|(a, _)| *a == app)
            .map(|&(_, l)| l)
            .expect("every swept app was calibrated")
    };

    let cells = spec.cells();
    let threads = if spec.threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        spec.threads
    }
    .min(cells.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<DeadlineRecord>>> = Mutex::new(vec![None; cells.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&cell) = cells.get(i) else { break };
                let record = run_cell(cell, base_for(cell.app));
                results.lock().expect("no poisoned workers")[i] = Some(record);
            });
        }
    });

    let runs = results
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|r| r.expect("every cell ran"))
        .collect();
    DeadlineReport {
        spec: spec.clone(),
        runs,
        workers: threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_deterministic_and_positive() {
        let a = calibrate(BenchApp::all()[0]);
        let b = calibrate(BenchApp::all()[0]);
        assert_eq!(a, b, "calibration must be reproducible");
        assert!(a >= 1);
    }

    #[test]
    fn tiny_sweep_upholds_invariants_and_orders_quality() {
        let app = BenchApp::all()[0];
        let spec = DeadlineSweepSpec {
            apps: vec![app],
            classes: vec![FaultClass::Burst],
            mtbes: vec![Mtbe::instructions(512)],
            deadline_mults: vec![1, 16],
            seeds: 2,
            threads: 2,
        };
        let report = run_deadline_sweep(&spec);
        assert_eq!(report.runs.len(), spec.total_runs());
        let bad = report.violations();
        assert!(
            bad.is_empty(),
            "deadline-sweep violations: {:?}",
            bad.iter().map(|(_, v)| v).collect::<Vec<_>>()
        );
        for r in &report.runs {
            assert!(r.completed, "{:?}", r.cell);
            assert_eq!(r.deadline, r.base_latency * r.cell.mult);
            assert_eq!(r.pacing.unit, "rounds");
            assert!(r.quality_db.is_finite(), "{:?}", r.cell);
        }
        // The surface itself (quality vs budget) is an empirical output,
        // not an invariant — a corrupted-but-completed frame can score
        // worse than a degraded frame's zero pads. What must hold: the
        // 1x budget sits at the app's intrinsic latency, so burst faults
        // have to push some frame over it somewhere in the sweep.
        let pressure = |mult: u64| -> u64 {
            report
                .runs
                .iter()
                .filter(|r| r.cell.mult == mult)
                .map(|r| r.pacing.deadline_misses + r.pacing.degraded_for_deadline)
                .sum()
        };
        assert!(
            pressure(1) > 0,
            "a 1x budget under burst faults must register deadline pressure"
        );
    }
}
