//! Campaign specification: the sweep's axes and per-run parameters.

use cg_fault::{FaultClass, Mtbe};
use cg_runtime::{Pacing, ParTransport};
use commguard::Protection;

/// Which executor runs the sweep's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// The round-robin deterministic simulator (`cg_runtime::run`).
    #[default]
    Deterministic,
    /// The one-OS-thread-per-node executor (`cg_runtime::run_parallel`)
    /// with per-core fault injection and frame-level checkpoint /
    /// re-execute recovery.
    Threaded,
}

impl ExecutorKind {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutorKind::Deterministic => "det",
            ExecutorKind::Threaded => "threaded",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "det" | "deterministic" => Ok(ExecutorKind::Deterministic),
            "threaded" | "par" | "parallel" => Ok(ExecutorKind::Threaded),
            other => Err(format!(
                "unknown executor '{other}' (expected det or threaded)"
            )),
        }
    }

    /// The default paced schedule for this executor's clock domain:
    /// scheduler rounds on the deterministic simulator, microseconds on
    /// the threaded executor. Both leave the deadline several periods
    /// past release so healthy runs meet it with room while a wedged
    /// recovery still trips the ladder inside the sweep's budget.
    pub fn default_pacing(&self) -> Pacing {
        match self {
            ExecutorKind::Deterministic => Pacing::Paced {
                period: 32,
                deadline: 128,
                slo: 128,
            },
            ExecutorKind::Threaded => Pacing::Paced {
                period: 300,
                deadline: 5_000,
                slo: 5_000,
            },
        }
    }
}

/// The full cross product swept by a campaign: every fault class ×
/// every MTBE × every protection mode × every seed.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Fault classes to inject.
    pub classes: Vec<FaultClass>,
    /// Error rates (mean instructions between errors).
    pub mtbes: Vec<Mtbe>,
    /// Protection modes under test.
    pub protections: Vec<Protection>,
    /// Seeds per cell; runs use seeds `1..=seeds`.
    pub seeds: u64,
    /// Steady-state frames per run.
    pub frames: u64,
    /// Queue capacity per run — small enough that cores genuinely block
    /// on each other, so pointer/stall classes have teeth.
    pub queue_capacity: usize,
    /// Hard scheduler-round cap; hitting it classifies the run as a hang.
    pub max_rounds: u64,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Which executor runs each cell. The threaded executor layers the
    /// frame retry/degrade recovery ladder on top of the same fault
    /// classes, so its invariants additionally bound retries and require
    /// header conservation against a fault-free golden run.
    pub executor: ExecutorKind,
    /// Inter-worker transport for threaded cells (ignored by the
    /// deterministic executor): the lock-free SPSC rings by default, or
    /// the mutex/condvar baselines for comparison sweeps. Recorded in
    /// the report so archived JSON identifies what actually ran.
    pub transport: ParTransport,
    /// When set, runs are traced (ring buffer) and violating, mismatching
    /// or hanging runs dump their trace + propagation summary into this
    /// directory. `None` (the default) keeps the zero-cost untraced path.
    pub trace_dir: Option<String>,
    /// When set, the metrics plane is enabled for every run: frame-latency
    /// percentiles land in each [`crate::RunRecord`], and each run dumps a
    /// Prometheus `.prom` + snapshot `.jsonl` pair into this directory.
    /// `None` (the default) keeps the zero-cost unprobed path.
    pub telemetry_dir: Option<String>,
    /// When set, every run executes under this paced real-time schedule:
    /// sources release frames on the period, overdue frames degrade at
    /// the deadline instead of stalling, and each [`crate::RunRecord`]
    /// carries the run's deadline accounting. Guarded paced runs must
    /// account for every scheduled frame. `None` (the default) keeps the
    /// self-timed executors.
    pub pacing: Option<Pacing>,
}

impl Default for CampaignSpec {
    /// The acceptance sweep: all five fault classes × three MTBEs ×
    /// three protection modes × ten seeds.
    fn default() -> Self {
        CampaignSpec {
            classes: FaultClass::all().to_vec(),
            // Instruction-level MTBEs: campaign pipelines run a few
            // thousand instructions per core, so these yield roughly
            // "storm", "frequent", and "occasional" fault regimes.
            mtbes: vec![
                Mtbe::instructions(256),
                Mtbe::instructions(2048),
                Mtbe::instructions(16_384),
            ],
            protections: vec![
                Protection::PpuUnprotectedQueue,
                Protection::PpuReliableQueue,
                Protection::commguard(),
            ],
            seeds: 10,
            frames: 40,
            queue_capacity: 16,
            max_rounds: 4_000_000,
            threads: 0,
            executor: ExecutorKind::default(),
            transport: ParTransport::default(),
            trace_dir: None,
            telemetry_dir: None,
            pacing: None,
        }
    }
}

impl CampaignSpec {
    /// A fast smoke-test sweep (CI / `--quick`).
    pub fn quick() -> Self {
        CampaignSpec {
            seeds: 3,
            frames: 16,
            ..Default::default()
        }
    }

    /// Total number of runs in the sweep.
    pub fn total_runs(&self) -> usize {
        self.classes.len() * self.mtbes.len() * self.protections.len() * self.seeds as usize
    }

    /// Flattens the cross product into per-run cells.
    pub fn cells(&self) -> Vec<RunCell> {
        let mut out = Vec::with_capacity(self.total_runs());
        for &class in &self.classes {
            for &mtbe in &self.mtbes {
                for &protection in &self.protections {
                    for seed in 1..=self.seeds {
                        out.push(RunCell {
                            class,
                            mtbe,
                            protection,
                            seed,
                        });
                    }
                }
            }
        }
        out
    }
}

/// One point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct RunCell {
    /// Fault class injected.
    pub class: FaultClass,
    /// Error rate.
    pub mtbe: Mtbe,
    /// Protection mode.
    pub protection: Protection,
    /// Run seed.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_meets_acceptance_floor() {
        let s = CampaignSpec::default();
        assert!(s.classes.len() >= 3);
        assert!(s.mtbes.len() >= 3);
        assert_eq!(s.protections.len(), 3);
        assert!(s.seeds >= 10);
        assert_eq!(s.total_runs(), s.cells().len());
        assert_eq!(s.total_runs(), 5 * 3 * 3 * 10);
    }

    #[test]
    fn quick_sweep_is_smaller() {
        let q = CampaignSpec::quick();
        assert!(q.total_runs() < CampaignSpec::default().total_runs());
    }

    #[test]
    fn executor_kind_parses_and_labels() {
        assert_eq!(
            CampaignSpec::default().executor,
            ExecutorKind::Deterministic
        );
        assert_eq!(ExecutorKind::parse("det"), Ok(ExecutorKind::Deterministic));
        assert_eq!(ExecutorKind::parse("threaded"), Ok(ExecutorKind::Threaded));
        assert_eq!(ExecutorKind::parse("par"), Ok(ExecutorKind::Threaded));
        assert!(ExecutorKind::parse("gpu").is_err());
        assert_eq!(ExecutorKind::Threaded.label(), "threaded");
    }

    #[test]
    fn default_transport_is_lock_free() {
        assert_eq!(CampaignSpec::default().transport, ParTransport::LockFree);
    }

    #[test]
    fn pacing_defaults_match_the_executor_clock_domain() {
        assert_eq!(CampaignSpec::default().pacing, None);
        let det = ExecutorKind::Deterministic.default_pacing();
        let thr = ExecutorKind::Threaded.default_pacing();
        assert!(det.is_paced() && thr.is_paced());
        // Rounds are coarser than microseconds; the det schedule must be
        // numerically tighter than the wall-clock one.
        assert!(det.period().unwrap() < thr.period().unwrap());
    }
}
