//! Campaign execution: builds a deterministic rate-converting pipeline
//! per seed, runs every sweep cell in parallel, checks hard invariants,
//! and classifies every run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use cg_runtime::{
    run, run_parallel_with, PacingReport, Program, RunReport, SimConfig, WatchdogStats,
};
use cg_telemetry::{to_jsonl, to_prometheus, TelemetryConfig, TelemetryReport};
use cg_trace::{analyze, text, to_chrome_json, TraceConfig};
use commguard::graph::{GraphBuilder, NodeId, NodeKind, StreamGraph};
use commguard::Protection;

use crate::spec::{CampaignSpec, ExecutorKind, RunCell};

/// Stall timeout for threaded cells: long enough that healthy peers
/// always beat it, short enough that a genuinely wedged port escalates
/// within a campaign-friendly wall-clock budget.
const PAR_STALL: Duration = Duration::from_millis(150);

/// Frame retry budget for threaded cells; beyond it a frame degrades.
const PAR_RETRY_BUDGET: u32 = 3;

/// How one run ended, from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// Bit-exact against the error-free golden output.
    Ok,
    /// Structurally exact (right sink length) but data differs.
    DataDegraded,
    /// Wrong sink length: stream structure was lost.
    StructuralMismatch,
    /// Hit the round cap without completing.
    Hang,
}

impl Outcome {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::DataDegraded => "degraded",
            Outcome::StructuralMismatch => "mismatch",
            Outcome::Hang => "hang",
        }
    }
}

/// The result of one run of the sweep.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The sweep cell this run belongs to.
    pub cell: RunCell,
    /// Classified outcome.
    pub outcome: Outcome,
    /// Whether the run finished before the round cap.
    pub completed: bool,
    /// Items collected at the sink.
    pub sink_len: usize,
    /// Items the schedule says the sink must collect.
    pub expected_len: usize,
    /// Faults injected across all cores.
    pub faults: u64,
    /// QM timeouts fired across all cores.
    pub timeouts: u64,
    /// Watchdog escalations (all rungs).
    pub watchdog_escalations: u64,
    /// Full per-rung watchdog counters, including the threaded executor's
    /// frame retries and degradations.
    pub watchdog: WatchdogStats,
    /// AM pad + discard events across all cores.
    pub realign_events: u64,
    /// Deepest any queue got (units), consumer-side attribution. Queue
    /// stats are always on, so this is filled whether or not the
    /// telemetry plane is enabled.
    pub max_queue_occupancy: u64,
    /// Blocked queue operations (pushes + pops) across all edges.
    pub blocked_ops: u64,
    /// Frame-latency percentiles `(p50, p99)` from the telemetry plane,
    /// merged over all cores, in the run's clock unit (scheduler rounds
    /// for det cells, microseconds for threaded). `None` when the
    /// campaign ran without telemetry.
    pub frame_latency: Option<(u64, u64)>,
    /// Path of the dumped telemetry snapshot series (`.jsonl`; a `.prom`
    /// sibling sits next to it), when the campaign ran with telemetry.
    pub telemetry_file: Option<String>,
    /// Deadline accounting when the campaign ran paced
    /// ([`CampaignSpec::pacing`]): on-time/missed frame counts, deadline
    /// degradations, and the latency/slack histograms. `None` on
    /// self-timed sweeps.
    pub pacing: Option<PacingReport>,
    /// Hard-invariant violations (always empty for a passing campaign).
    pub violations: Vec<String>,
    /// Path of the dumped trace, when this run was bad enough to keep one
    /// (tracing enabled and the run violated, mismatched, or hung).
    pub trace_file: Option<String>,
    /// Fault-propagation chains from the post-mortem analyzer, one
    /// rendered line per chain (only filled alongside `trace_file`).
    pub propagation: Vec<String>,
}

/// Everything a finished campaign produced.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The sweep that was run.
    pub spec: CampaignSpec,
    /// One record per run, in cell order.
    pub runs: Vec<RunRecord>,
    /// Worker threads the sweep actually ran on. `spec.threads == 0`
    /// means "auto", which resolves to `available_parallelism()` — or
    /// silently to 4 when that probe fails — so the resolved count is
    /// recorded here rather than left implicit.
    pub workers: usize,
}

impl CampaignReport {
    /// All invariant violations across the campaign.
    pub fn violations(&self) -> Vec<(&RunRecord, &str)> {
        self.runs
            .iter()
            .flat_map(|r| r.violations.iter().map(move |v| (r, v.as_str())))
            .collect()
    }

    /// Outcome counts as (ok, degraded, mismatch, hang).
    pub fn outcome_counts(&self, filter: impl Fn(&RunRecord) -> bool) -> [usize; 4] {
        let mut c = [0usize; 4];
        for r in self.runs.iter().filter(|r| filter(r)) {
            c[r.outcome as usize] += 1;
        }
        c
    }
}

/// A tiny deterministic generator for per-seed pipeline shapes
/// (split-mix style; no external RNG needed here).
struct ShapeRng(u64);

impl ShapeRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Per-seed pipeline shape: `src → f1 → … → fk → snk` with
/// rate-converting hops.
fn shape(seed: u64) -> Vec<(u32, u32)> {
    let mut rng = ShapeRng(seed ^ 0xc0ff_ee00);
    let hops = rng.range(2, 4) as usize;
    (0..hops)
        .map(|_| (rng.range(1, 6) as u32, rng.range(1, 6) as u32))
        .collect()
}

fn build_graph(rates: &[(u32, u32)]) -> (StreamGraph, Vec<NodeId>) {
    let mut b = GraphBuilder::new("campaign");
    let mut ids = vec![b.add_node("src", NodeKind::Source)];
    for i in 1..rates.len() {
        ids.push(b.add_node(format!("f{i}"), NodeKind::Filter));
    }
    ids.push(b.add_node("snk", NodeKind::Sink));
    for (i, &(push, pop)) in rates.iter().enumerate() {
        b.connect(ids[i], ids[i + 1], push, pop)
            .expect("pipeline edge");
    }
    (b.build().expect("valid pipeline"), ids)
}

/// Binds deterministic work: the source counts up; filters fold their
/// pops into their push rate with a stage salt.
fn program(rates: &[(u32, u32)]) -> (Program, NodeId) {
    let (graph, ids) = build_graph(rates);
    let mut p = Program::new(graph);
    let src_push = rates[0].0;
    let mut next = 0u32;
    p.set_source(ids[0], move |out| {
        for _ in 0..src_push {
            out.push(next);
            next = next.wrapping_add(1);
        }
    });
    for (i, id) in ids.iter().enumerate().skip(1).take(ids.len() - 2) {
        let (push, _pop) = rates[i];
        let salt = i as u32 * 1000;
        p.set_filter(*id, move |inp, out| {
            let sum: u32 = inp[0].iter().fold(0, |a, &b| a.wrapping_add(b));
            for k in 0..push {
                let v = inp[0].get(k as usize).copied().unwrap_or(sum);
                out[0].push(v.wrapping_add(salt));
            }
        });
    }
    (p, *ids.last().expect("sink"))
}

/// Error-free golden output for this seed's pipeline.
fn golden(spec: &CampaignSpec, seed: u64) -> Vec<u32> {
    let rates = shape(seed);
    let (p, snk) = program(&rates);
    let cfg = SimConfig::error_free(spec.frames)
        .seed(seed)
        .frames(spec.frames);
    let report = run(p, &cfg).expect("error-free golden run");
    assert!(report.completed, "golden run must complete");
    report.sink_output(snk).to_vec()
}

fn total_realign_events(report: &RunReport) -> u64 {
    let subops = report.total_subops();
    subops.pad_events + subops.discard_events
}

/// Classifies a finished run against the golden output.
fn classify(completed: bool, sink: &[u32], expected: &[u32]) -> Outcome {
    if !completed {
        Outcome::Hang
    } else if sink.len() != expected.len() {
        Outcome::StructuralMismatch
    } else if sink != expected {
        Outcome::DataDegraded
    } else {
        Outcome::Ok
    }
}

/// Paced-run invariant, shared by both executors: a guarded paced run
/// must carry a deadline report accounting for every scheduled frame —
/// a frame the degradation ladder loses track of is a silent stall.
fn check_pacing(spec: &CampaignSpec, report: &RunReport, violations: &mut Vec<String>) {
    if spec.pacing.is_none() {
        return;
    }
    match report.pacing.as_ref() {
        None => violations.push("paced run carries no pacing report".to_string()),
        Some(p) if p.frames_observed() != spec.frames => violations.push(format!(
            "pacing accounted {} of {} frames",
            p.frames_observed(),
            spec.frames
        )),
        Some(_) => {}
    }
}

/// The telemetry config a sweep cell runs under.
fn cell_telemetry(spec: &CampaignSpec) -> TelemetryConfig {
    if spec.telemetry_dir.is_some() {
        TelemetryConfig::enabled()
    } else {
        TelemetryConfig::Off
    }
}

/// Merged frame-latency percentiles `(p50, p99)` from a run's telemetry.
fn frame_latency(report: &RunReport) -> Option<(u64, u64)> {
    report.telemetry.as_ref().map(|t| {
        let h = t.merged_latency();
        (h.quantile(0.50), h.quantile(0.99))
    })
}

/// Dumps a run's telemetry as a Prometheus `.prom` + snapshot `.jsonl`
/// pair. Returns the `.jsonl` path, or `None` (with a stderr note) when
/// the directory is unwritable — a diagnostics failure must not abort
/// the campaign.
fn dump_telemetry(dir: &str, cell: RunCell, telemetry: &TelemetryReport) -> Option<String> {
    let stem = format!(
        "telemetry_{}_{}_{}_{}",
        slug(cell.class.label()),
        cell.mtbe.as_instructions(),
        slug(cell.protection.label()),
        cell.seed
    );
    let base = std::path::Path::new(dir).join(&stem);
    let jsonl_path = base.with_extension("jsonl");
    let write = |path: &std::path::Path, body: String| -> bool {
        std::fs::write(path, body).map_or_else(
            |e| {
                eprintln!("campaign: cannot write {}: {e}", path.display());
                false
            },
            |()| true,
        )
    };
    if !write(&jsonl_path, to_jsonl(telemetry)) {
        return None;
    }
    write(&base.with_extension("prom"), to_prometheus(telemetry));
    Some(jsonl_path.to_string_lossy().into_owned())
}

/// Keeps a post-mortem for a bad run (trace path + propagation chains),
/// when the campaign is traced. Bit-exact runs have nothing to dump.
fn postmortem(
    spec: &CampaignSpec,
    cell: RunCell,
    report: &RunReport,
    bad: bool,
) -> (Option<String>, Vec<String>) {
    let Some(dir) = &spec.trace_dir else {
        return (None, Vec::new());
    };
    if !bad {
        return (None, Vec::new());
    }
    let data = report.trace.as_ref().expect("tracing was enabled");
    let analysis = analyze(&data.records);
    let propagation = analysis.chains.iter().map(|c| c.to_string()).collect();
    (dump_trace(dir, cell, &data.records, &analysis), propagation)
}

/// Executes one sweep cell on the configured executor.
fn run_cell(spec: &CampaignSpec, cell: RunCell, expected: &[u32]) -> RunRecord {
    match spec.executor {
        ExecutorKind::Deterministic => run_cell_det(spec, cell, expected),
        ExecutorKind::Threaded => run_cell_threaded(spec, cell, expected),
    }
}

/// Executes one deterministic-executor cell and evaluates its invariants.
fn run_cell_det(spec: &CampaignSpec, cell: RunCell, expected: &[u32]) -> RunRecord {
    let rates = shape(cell.seed);
    let (p, snk) = program(&rates);
    let cfg = SimConfig {
        protection: cell.protection,
        inject: true,
        mtbe: cell.mtbe,
        fault_class: cell.class,
        queue_capacity: spec.queue_capacity,
        max_rounds: spec.max_rounds,
        trace: if spec.trace_dir.is_some() {
            TraceConfig::ring()
        } else {
            TraceConfig::Off
        },
        telemetry: cell_telemetry(spec),
        ..SimConfig::error_free(spec.frames)
    }
    .seed(cell.seed);
    let cfg = match spec.pacing {
        Some(p) => cfg.pacing(p),
        None => cfg,
    };
    // Invariant: every run terminates. `run` itself is bounded by
    // `max_rounds`, so returning at all proves termination; anything
    // else (a panic) aborts the campaign loudly.
    let report = run(p, &cfg).expect("runs never error at runtime");

    let sink = report.sink_output(snk);
    let outcome = classify(report.completed, sink, expected);

    let realign_events = total_realign_events(&report);
    // Structural bound on realignment work: each in-port decides pad vs
    // discard at most once per frame transition (plus start/finish), and
    // a discard episode can split across a frame's header+data. Edges ==
    // in-ports in a pipeline.
    let realign_bound = (spec.frames + 2) * rates.len() as u64 * 2;

    let mut violations = Vec::new();
    if cell.protection.guards_enabled() {
        if !report.completed {
            violations.push("commguard run hit the round cap".to_string());
        }
        if sink.len() != expected.len() {
            violations.push(format!(
                "commguard sink length {} != scheduled {}",
                sink.len(),
                expected.len()
            ));
        }
        if realign_events > realign_bound {
            violations.push(format!(
                "realignment events {realign_events} exceed structural bound {realign_bound}"
            ));
        }
        check_pacing(spec, &report, &mut violations);
    }

    let sink_len = sink.len();
    let bad = !violations.is_empty() || outcome != Outcome::Ok;
    let (trace_file, propagation) = postmortem(spec, cell, &report, bad);
    let telemetry_file = spec
        .telemetry_dir
        .as_ref()
        .zip(report.telemetry.as_ref())
        .and_then(|(dir, t)| dump_telemetry(dir, cell, t));

    RunRecord {
        cell,
        outcome,
        completed: report.completed,
        sink_len,
        expected_len: expected.len(),
        faults: report.total_faults().total(),
        timeouts: report.total_timeouts(),
        watchdog_escalations: report.watchdog.total_escalations(),
        watchdog: report.watchdog,
        realign_events,
        max_queue_occupancy: report.max_queue_occupancy(),
        blocked_ops: report.queues.blocked_pushes + report.queues.blocked_pops,
        frame_latency: frame_latency(&report),
        telemetry_file,
        pacing: report.pacing,
        violations,
        trace_file,
        propagation,
    }
}

/// Fault-free header traffic for this seed's pipeline under a given
/// protection mode, from the deterministic executor. The threaded
/// executor's frame retry/degrade ladder must conserve this exactly:
/// headers are pushed once per frame boundary, never per attempt.
fn golden_header_pushes(spec: &CampaignSpec, seed: u64, protection: Protection) -> u64 {
    let rates = shape(seed);
    let (p, _) = program(&rates);
    let cfg = SimConfig {
        protection,
        inject: false,
        queue_capacity: spec.queue_capacity,
        ..SimConfig::error_free(spec.frames)
    }
    .seed(seed);
    run(p, &cfg)
        .expect("fault-free golden run")
        .queues
        .header_pushes
}

/// Executes one threaded-executor cell and evaluates its invariants:
/// guarded runs must complete, keep a frame-exact sink, conserve the
/// fault-free header traffic, and stay inside the frame retry budget.
fn run_cell_threaded(spec: &CampaignSpec, cell: RunCell, expected: &[u32]) -> RunRecord {
    let rates = shape(cell.seed);
    let node_count = rates.len() as u64 + 1;
    let (p, snk) = program(&rates);
    let cfg = SimConfig {
        protection: cell.protection,
        inject: true,
        mtbe: cell.mtbe,
        fault_class: cell.class,
        queue_capacity: spec.queue_capacity,
        stall_timeout: PAR_STALL,
        par_retry_budget: PAR_RETRY_BUDGET,
        trace: if spec.trace_dir.is_some() {
            TraceConfig::ring()
        } else {
            TraceConfig::Off
        },
        telemetry: cell_telemetry(spec),
        ..SimConfig::error_free(spec.frames)
    }
    .seed(cell.seed);
    let cfg = match spec.pacing {
        Some(p) => cfg.pacing(p),
        None => cfg,
    };

    // Liveness is the threaded executor's own contract: every blocking
    // operation times out and every frame either retries within budget or
    // degrades, so `run_parallel` returning at all proves termination. An
    // `Err` (a worker died) is a liveness failure, classified as a hang.
    let report = match run_parallel_with(p, &cfg, spec.transport) {
        Ok(r) => r,
        Err(e) => {
            let mut violations = Vec::new();
            if cell.protection.guards_enabled() {
                violations.push(format!("threaded run errored: {e}"));
            }
            return RunRecord {
                cell,
                outcome: Outcome::Hang,
                completed: false,
                sink_len: 0,
                expected_len: expected.len(),
                faults: 0,
                timeouts: 0,
                watchdog_escalations: 0,
                watchdog: WatchdogStats::default(),
                realign_events: 0,
                max_queue_occupancy: 0,
                blocked_ops: 0,
                frame_latency: None,
                telemetry_file: None,
                pacing: None,
                violations,
                trace_file: None,
                propagation: Vec::new(),
            };
        }
    };

    let sink = report.sink_output(snk);
    let outcome = classify(report.completed, sink, expected);

    let mut violations = Vec::new();
    if cell.protection.guards_enabled() {
        if !report.completed {
            violations.push("threaded commguard run did not complete".to_string());
        }
        if sink.len() != expected.len() {
            violations.push(format!(
                "threaded commguard sink length {} != scheduled {}",
                sink.len(),
                expected.len()
            ));
        }
        let golden_headers = golden_header_pushes(spec, cell.seed, cell.protection);
        if report.queues.header_pushes != golden_headers {
            violations.push(format!(
                "header conservation violated: {} pushed, golden {}",
                report.queues.header_pushes, golden_headers
            ));
        }
        let retry_bound = u64::from(PAR_RETRY_BUDGET) * spec.frames * node_count;
        if report.watchdog.frame_retries > retry_bound {
            violations.push(format!(
                "frame retries {} exceed budget bound {retry_bound}",
                report.watchdog.frame_retries
            ));
        }
        check_pacing(spec, &report, &mut violations);
    }

    let sink_len = sink.len();
    let realign_events = total_realign_events(&report);
    let bad = !violations.is_empty() || outcome != Outcome::Ok;
    let (trace_file, propagation) = postmortem(spec, cell, &report, bad);
    let telemetry_file = spec
        .telemetry_dir
        .as_ref()
        .zip(report.telemetry.as_ref())
        .and_then(|(dir, t)| dump_telemetry(dir, cell, t));

    RunRecord {
        cell,
        outcome,
        completed: report.completed,
        sink_len,
        expected_len: expected.len(),
        faults: report.total_faults().total(),
        timeouts: report.total_timeouts(),
        watchdog_escalations: report.watchdog.total_escalations(),
        watchdog: report.watchdog,
        realign_events,
        max_queue_occupancy: report.max_queue_occupancy(),
        blocked_ops: report.queues.blocked_pushes + report.queues.blocked_pops,
        frame_latency: frame_latency(&report),
        telemetry_file,
        pacing: report.pacing,
        violations,
        trace_file,
        propagation,
    }
}

/// Writes a bad run's trace as text, Chrome JSON, and a propagation
/// summary. Returns the text-trace path, or `None` (with a stderr note)
/// when the directory is unwritable — a diagnostics failure must not
/// abort the campaign.
fn dump_trace(
    dir: &str,
    cell: RunCell,
    records: &[cg_trace::TraceRecord],
    analysis: &cg_trace::Analysis,
) -> Option<String> {
    let stem = format!(
        "trace_{}_{}_{}_{}",
        slug(cell.class.label()),
        cell.mtbe.as_instructions(),
        slug(cell.protection.label()),
        cell.seed
    );
    let base = std::path::Path::new(dir).join(&stem);
    let trace_path = base.with_extension("trace");
    let write = |path: &std::path::Path, body: String| -> bool {
        std::fs::write(path, body).map_or_else(
            |e| {
                eprintln!("campaign: cannot write {}: {e}", path.display());
                false
            },
            |()| true,
        )
    };
    if !write(&trace_path, text::to_text(records)) {
        return None;
    }
    write(
        &base.with_extension("chrome.json"),
        to_chrome_json(&stem, records),
    );
    write(
        &base.with_extension("propagation.txt"),
        analysis.to_string(),
    );
    Some(trace_path.to_string_lossy().into_owned())
}

fn slug(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

/// Runs the whole sweep on `spec.threads` workers.
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    if let Some(dir) = &spec.trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("campaign: cannot create trace dir {dir}: {e}");
        }
    }
    if let Some(dir) = &spec.telemetry_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("campaign: cannot create telemetry dir {dir}: {e}");
        }
    }
    let cells = spec.cells();
    // One golden run per distinct seed, shared by every cell.
    let goldens: Vec<Vec<u32>> = (1..=spec.seeds).map(|s| golden(spec, s)).collect();

    let threads = if spec.threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        spec.threads
    }
    .min(cells.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<RunRecord>>> = Mutex::new(vec![None; cells.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&cell) = cells.get(i) else { break };
                let expected = &goldens[(cell.seed - 1) as usize];
                let record = run_cell(spec, cell, expected);
                results.lock().expect("no poisoned workers")[i] = Some(record);
            });
        }
    });

    let runs = results
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|r| r.expect("every cell ran"))
        .collect();
    CampaignReport {
        spec: spec.clone(),
        runs,
        workers: threads,
    }
}

/// A tiny sweep usable from unit tests.
pub fn smoke_spec() -> CampaignSpec {
    CampaignSpec {
        seeds: 2,
        frames: 8,
        ..CampaignSpec::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cg_fault::FaultClass;
    use commguard::Protection;

    #[test]
    fn shapes_are_deterministic_and_varied() {
        assert_eq!(shape(1), shape(1));
        assert_ne!(shape(1), shape(2));
        for seed in 1..=20 {
            for (push, pop) in shape(seed) {
                assert!((1..=6).contains(&push) && (1..=6).contains(&pop));
            }
        }
    }

    #[test]
    fn golden_is_reproducible() {
        let spec = smoke_spec();
        assert_eq!(golden(&spec, 1), golden(&spec, 1));
        assert!(!golden(&spec, 1).is_empty());
    }

    #[test]
    fn error_free_cell_is_bit_exact() {
        let spec = smoke_spec();
        let expected = golden(&spec, 1);
        let cell = RunCell {
            class: FaultClass::Baseline,
            mtbe: cg_fault::Mtbe::instructions(256),
            protection: Protection::ErrorFree,
            seed: 1,
        };
        let r = run_cell(&spec, cell, &expected);
        assert_eq!(r.outcome, Outcome::Ok);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn smoke_campaign_upholds_commguard_invariants() {
        let report = run_campaign(&smoke_spec());
        assert_eq!(report.runs.len(), report.spec.total_runs());
        let bad = report.violations();
        assert!(
            bad.is_empty(),
            "invariant violations: {:?}",
            bad.iter()
                .map(|(r, v)| format!(
                    "[{} mtbe={} {} seed={}] {v}",
                    r.cell.class,
                    r.cell.mtbe.as_instructions(),
                    r.cell.protection.label(),
                    r.cell.seed
                ))
                .collect::<Vec<_>>()
        );
        // Every run terminated (hang is a classification, not a panic).
        assert!(report.runs.iter().all(|r| r.sink_len <= 1_000_000));
        // Untraced campaigns never dump.
        assert!(report.runs.iter().all(|r| r.trace_file.is_none()));
        // The auto-resolved worker count is recorded, never left implicit.
        assert!(report.workers >= 1);
        assert!(report.workers <= report.spec.total_runs());
    }

    #[test]
    fn threaded_smoke_campaign_upholds_invariants() {
        let spec = CampaignSpec {
            executor: ExecutorKind::Threaded,
            classes: vec![
                FaultClass::Baseline,
                FaultClass::Burst,
                FaultClass::HeaderCorruption,
            ],
            mtbes: vec![cg_fault::Mtbe::instructions(256)],
            seeds: 2,
            frames: 8,
            ..CampaignSpec::default()
        };
        let report = run_campaign(&spec);
        assert_eq!(report.runs.len(), spec.total_runs());
        let bad = report.violations();
        assert!(
            bad.is_empty(),
            "threaded invariant violations: {:?}",
            bad.iter().map(|(_, v)| v).collect::<Vec<_>>()
        );
        // Guarded threaded cells never hang and stay frame-exact.
        for r in report
            .runs
            .iter()
            .filter(|r| r.cell.protection.guards_enabled())
        {
            assert!(r.completed, "{:?}", r.cell);
            assert_eq!(r.sink_len, r.expected_len, "{:?}", r.cell);
        }
        // The sweep genuinely injected faults somewhere.
        assert!(report.runs.iter().map(|r| r.faults).sum::<u64>() > 0);
    }

    #[test]
    fn paced_det_smoke_campaign_accounts_every_frame() {
        let spec = CampaignSpec {
            pacing: Some(ExecutorKind::Deterministic.default_pacing()),
            ..smoke_spec()
        };
        let report = run_campaign(&spec);
        let bad = report.violations();
        assert!(
            bad.is_empty(),
            "paced invariant violations: {:?}",
            bad.iter().map(|(_, v)| v).collect::<Vec<_>>()
        );
        for r in report
            .runs
            .iter()
            .filter(|r| r.cell.protection.guards_enabled())
        {
            let pace = r.pacing.as_ref().expect("paced record carries a report");
            assert_eq!(pace.frames_observed(), spec.frames, "{:?}", r.cell);
            assert_eq!(pace.unit, "rounds");
        }
        // Unpaced sweeps keep the field empty.
        let plain = run_campaign(&smoke_spec());
        assert!(plain.runs.iter().all(|r| r.pacing.is_none()));
    }

    #[test]
    fn paced_threaded_smoke_campaign_accounts_every_frame() {
        let spec = CampaignSpec {
            executor: ExecutorKind::Threaded,
            pacing: Some(ExecutorKind::Threaded.default_pacing()),
            classes: vec![FaultClass::Burst],
            mtbes: vec![cg_fault::Mtbe::instructions(256)],
            protections: vec![Protection::commguard()],
            seeds: 2,
            frames: 8,
            ..CampaignSpec::default()
        };
        let report = run_campaign(&spec);
        let bad = report.violations();
        assert!(
            bad.is_empty(),
            "paced threaded violations: {:?}",
            bad.iter().map(|(_, v)| v).collect::<Vec<_>>()
        );
        for r in &report.runs {
            let pace = r.pacing.as_ref().expect("paced record carries a report");
            assert_eq!(pace.frames_observed(), spec.frames, "{:?}", r.cell);
            assert_eq!(pace.unit, "us");
        }
    }

    #[test]
    fn threaded_campaign_accepts_baseline_transports() {
        use cg_runtime::ParTransport;
        let spec = CampaignSpec {
            executor: ExecutorKind::Threaded,
            transport: ParTransport::Batched,
            classes: vec![FaultClass::Burst],
            mtbes: vec![cg_fault::Mtbe::instructions(256)],
            protections: vec![Protection::commguard()],
            seeds: 2,
            frames: 8,
            ..CampaignSpec::default()
        };
        let report = run_campaign(&spec);
        assert!(report.violations().is_empty());
        assert_eq!(report.spec.transport, ParTransport::Batched);
    }

    #[test]
    fn explicit_thread_count_is_recorded_as_given() {
        let spec = CampaignSpec {
            threads: 2,
            ..smoke_spec()
        };
        let report = run_campaign(&spec);
        assert_eq!(report.workers, 2);
    }

    #[test]
    fn telemetry_campaign_dumps_every_run_and_fills_percentiles() {
        let dir =
            std::env::temp_dir().join(format!("cg-campaign-telem-test-{}", std::process::id()));
        let spec = CampaignSpec {
            classes: vec![FaultClass::Baseline],
            mtbes: vec![cg_fault::Mtbe::instructions(2048)],
            protections: vec![Protection::commguard()],
            seeds: 2,
            frames: 8,
            telemetry_dir: Some(dir.to_string_lossy().into_owned()),
            ..CampaignSpec::default()
        };
        let report = run_campaign(&spec);
        assert!(report.violations().is_empty());
        for r in &report.runs {
            let (p50, p99) = r.frame_latency.expect("telemetry percentiles filled");
            assert!(p50 <= p99);
            let jsonl = r.telemetry_file.as_ref().expect("telemetry dumped");
            let body = std::fs::read_to_string(jsonl).expect("jsonl readable");
            cg_telemetry::from_jsonl(&body).expect("jsonl parses back");
            let prom = jsonl.strip_suffix(".jsonl").expect("jsonl extension");
            let prom = std::fs::read_to_string(format!("{prom}.prom")).expect("prom sibling");
            cg_telemetry::parse_prometheus(&prom).expect("prom validates");
        }
        // Untelemetered campaigns keep the record fields cheap but filled.
        let plain = run_campaign(&CampaignSpec {
            telemetry_dir: None,
            ..spec
        });
        for r in &plain.runs {
            assert!(r.frame_latency.is_none());
            assert!(r.telemetry_file.is_none());
            assert!(r.max_queue_occupancy > 0, "queue stats are always on");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_campaign_dumps_bad_runs_only() {
        let dir =
            std::env::temp_dir().join(format!("cg-campaign-trace-test-{}", std::process::id()));
        let spec = CampaignSpec {
            classes: vec![FaultClass::PointerCorruption],
            mtbes: vec![cg_fault::Mtbe::instructions(256)],
            protections: vec![Protection::PpuUnprotectedQueue],
            seeds: 3,
            frames: 8,
            trace_dir: Some(dir.to_string_lossy().into_owned()),
            ..CampaignSpec::default()
        };
        let report = run_campaign(&spec);
        let mut dumped = 0;
        for r in &report.runs {
            let bad = !r.violations.is_empty() || r.outcome != Outcome::Ok;
            assert_eq!(r.trace_file.is_some(), bad, "dump iff the run went bad");
            if let Some(path) = &r.trace_file {
                dumped += 1;
                let body = std::fs::read_to_string(path).expect("dumped trace readable");
                assert!(!body.is_empty());
                let base = path.strip_suffix(".trace").expect("trace extension");
                assert!(std::path::Path::new(&format!("{base}.chrome.json")).exists());
                assert!(std::path::Path::new(&format!("{base}.propagation.txt")).exists());
            }
        }
        assert!(
            dumped > 0,
            "unprotected pointer corruption at MTBE 256 must break at least one of 3 seeds"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
