//! Fault-campaign engine for the CommGuard reproduction.
//!
//! Sweeps the cross product of fault class x MTBE x protection mode over
//! many seeds in parallel, asserts hard per-run invariants, and emits a
//! machine-readable JSON report plus a human-readable summary table.

pub mod deadline;
pub mod fuzz;
pub mod json;
pub mod runner;
pub mod spec;

pub use deadline::{
    run_deadline_sweep, DeadlineCell, DeadlineRecord, DeadlineReport, DeadlineSweepSpec,
};
pub use fuzz::{minimize, replay_file, run_fuzz, FuzzReport, FuzzSpec, Oracle, ReproCase};
pub use runner::{run_campaign, CampaignReport, Outcome, RunRecord};
pub use spec::{CampaignSpec, ExecutorKind, RunCell};
