//! Injectable fault classes for campaign sweeps.
//!
//! The baseline injector models *independent* single-event upsets whose
//! manifestation follows the [`crate::EffectModel`]. Real error-prone
//! silicon also exhibits structured failure modes; each [`FaultClass`]
//! selects one such mode for the runtime to apply mechanically:
//!
//! * **Baseline** — independent upsets per the effect model (the paper's
//!   §6 methodology).
//! * **Burst** — spatially correlated upsets: one event flips a run of
//!   adjacent bits (and may spill into neighbouring items), as a particle
//!   strike across adjacent cells would.
//! * **StuckAt** — a permanent fault: the first event latches one bit of
//!   the core's datapath at a fixed value; every item produced afterwards
//!   passes through the stuck bit.
//! * **PointerCorruption** — every event lands in queue-management state,
//!   flipping bits of the shared head/tail pointers (the paper's QME
//!   class, concentrated).
//! * **HeaderCorruption** — every event strikes an in-flight frame-header
//!   word, stressing the HI/AM ECC path end to end.

use rand::Rng;

use crate::rng::DetRng;

/// A structured fault mode swept by the campaign engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultClass {
    /// Independent upsets following the effect model.
    #[default]
    Baseline,
    /// Correlated multi-bit bursts in live data.
    Burst,
    /// A latched stuck-at bit on the producing datapath.
    StuckAt,
    /// Shared queue head/tail pointer corruption.
    PointerCorruption,
    /// In-flight frame-header codeword corruption.
    HeaderCorruption,
}

impl FaultClass {
    /// Every class, in sweep order.
    pub fn all() -> [FaultClass; 5] {
        [
            FaultClass::Baseline,
            FaultClass::Burst,
            FaultClass::StuckAt,
            FaultClass::PointerCorruption,
            FaultClass::HeaderCorruption,
        ]
    }

    /// Stable machine-readable label (CLI and report key).
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Baseline => "baseline",
            FaultClass::Burst => "burst",
            FaultClass::StuckAt => "stuck-at",
            FaultClass::PointerCorruption => "pointer",
            FaultClass::HeaderCorruption => "header",
        }
    }

    /// Parses a [`Self::label`] string.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input.
    pub fn parse(s: &str) -> Result<FaultClass, String> {
        FaultClass::all()
            .into_iter()
            .find(|c| c.label() == s)
            .ok_or_else(|| format!("unknown fault class `{s}`"))
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for FaultClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultClass::parse(s)
    }
}

/// A latched stuck-at fault: `bit` of every word passing the faulty
/// datapath reads as `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckAtState {
    /// Bit position in the 32-bit word.
    pub bit: u32,
    /// The latched value of the bit.
    pub value: bool,
}

impl StuckAtState {
    /// Samples a random stuck bit and polarity.
    pub fn sample(rng: &mut DetRng) -> Self {
        StuckAtState {
            bit: rng.gen_range(0..32u32),
            value: rng.gen(),
        }
    }

    /// Applies the stuck bit to one word.
    pub fn apply(self, word: u32) -> u32 {
        if self.value {
            word | (1 << self.bit)
        } else {
            word & !(1 << self.bit)
        }
    }
}

/// Samples the length of a correlated burst: geometric on {2, 3, ...}
/// with mean 3, capped at 8 adjacent bits (multi-cell upsets are short).
pub fn sample_burst_len(rng: &mut DetRng) -> u32 {
    let mut n = 2u32;
    while n < 8 && rng.gen::<f64>() >= 0.5 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::core_rng;

    #[test]
    fn labels_round_trip() {
        for class in FaultClass::all() {
            assert_eq!(FaultClass::parse(class.label()), Ok(class));
            assert_eq!(class.label().parse::<FaultClass>(), Ok(class));
        }
        assert!(FaultClass::parse("bogus").is_err());
    }

    #[test]
    fn labels_distinct() {
        let mut labels: Vec<_> = FaultClass::all().iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn stuck_at_forces_the_bit() {
        let hi = StuckAtState {
            bit: 5,
            value: true,
        };
        assert_eq!(hi.apply(0), 32);
        assert_eq!(hi.apply(u32::MAX), u32::MAX);
        let lo = StuckAtState {
            bit: 5,
            value: false,
        };
        assert_eq!(lo.apply(u32::MAX), !32);
        assert_eq!(lo.apply(0), 0);
        // Idempotent: a latched bit stays latched.
        assert_eq!(hi.apply(hi.apply(123)), hi.apply(123));
    }

    #[test]
    fn stuck_at_sampling_covers_positions_and_polarities() {
        let mut rng = core_rng(13, 0);
        let mut bits = std::collections::HashSet::new();
        let (mut ones, mut zeros) = (0, 0);
        for _ in 0..500 {
            let s = StuckAtState::sample(&mut rng);
            assert!(s.bit < 32);
            bits.insert(s.bit);
            if s.value {
                ones += 1;
            } else {
                zeros += 1;
            }
        }
        assert!(bits.len() > 20, "covered {} positions", bits.len());
        assert!(ones > 100 && zeros > 100);
    }

    #[test]
    fn burst_lengths_bounded_with_sane_mean() {
        let mut rng = core_rng(17, 0);
        let lens: Vec<u32> = (0..10_000).map(|_| sample_burst_len(&mut rng)).collect();
        assert!(lens.iter().all(|&n| (2..=8).contains(&n)));
        let mean = lens.iter().sum::<u32>() as f64 / lens.len() as f64;
        assert!((2.5..3.5).contains(&mean), "mean {mean}");
    }
}
