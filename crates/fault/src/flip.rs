//! Raw bit-flip primitives.

use rand::Rng;

use crate::rng::DetRng;

/// Flips bit `bit` of `word`.
///
/// # Panics
///
/// Panics if `bit >= 32`.
#[inline]
pub fn flip_word_bit(word: u32, bit: u32) -> u32 {
    assert!(bit < 32, "bit {bit} out of range");
    word ^ (1 << bit)
}

/// Flips a uniformly random bit of `word`.
#[inline]
pub fn flip_random_bit_u32(word: u32, rng: &mut DetRng) -> u32 {
    word ^ (1 << rng.gen_range(0..32u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::core_rng;

    #[test]
    fn flip_is_involutive() {
        let w = 0xABCD_1234;
        for bit in 0..32 {
            assert_eq!(flip_word_bit(flip_word_bit(w, bit), bit), w);
        }
    }

    #[test]
    fn random_flip_changes_exactly_one_bit() {
        let mut rng = core_rng(1, 0);
        for _ in 0..100 {
            let w = rng.gen::<u32>();
            let f = flip_random_bit_u32(w, &mut rng);
            assert_eq!((w ^ f).count_ones(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bit_32_panics() {
        let _ = flip_word_bit(0, 32);
    }
}
