//! # cg-fault — deterministic hardware-fault injection
//!
//! Models the error-injection methodology of the CommGuard paper (§6):
//! each simulated core owns an independent injector that picks a random
//! target point in the future following a configured **mean time between
//! errors (MTBE, in instructions)** and, when simulation reaches that
//! point, injects an error.
//!
//! Two injection layers are provided:
//!
//! * **Mechanistic** — random bit flips in raw words (`flip`) and in the
//!   register file of the [`cg-vm`](../cg_vm/index.html) bytecode cores.
//!   This mirrors the paper's register-based injection exactly.
//! * **Effect-level** — the [`EffectModel`] maps each raw fault to its
//!   architecture-level manifestation class from the paper's §3 taxonomy
//!   (data transmission error, control-flow perturbation, addressing
//!   error, masked/silent). The class rates default to values calibrated
//!   by running the mechanistic injector on `cg-vm` kernels (see
//!   `cg_vm::calibration`), and can be overridden.
//!
//! Everything is deterministic given a run seed: per-core RNGs are seeded
//! with `splitmix64(run_seed, core_id)` and never share state, matching the
//! paper's "each core's error injection is independent and has its own
//! random number generator".
//!
//! ```
//! use cg_fault::{CoreInjector, EffectModel, Mtbe};
//!
//! let mut inj = CoreInjector::new(Mtbe::instructions(1000), EffectModel::calibrated(), 42, 0);
//! // Advance the core by 10k instructions; roughly 10 faults arrive.
//! let events = inj.advance(10_000);
//! assert!(!events.is_empty());
//! ```

mod classes;
mod effect;
mod flip;
mod injector;
mod rng;
mod stats;

pub use classes::{sample_burst_len, FaultClass, StuckAtState};
pub use effect::{ControlPerturbation, EffectKind, EffectModel};
pub use flip::{flip_random_bit_u32, flip_word_bit};
pub use injector::{effect_tag, CoreInjector, FaultEvent, Mtbe};
pub use rng::{core_rng, splitmix64, DetRng};
pub use stats::FaultStats;
