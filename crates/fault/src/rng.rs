//! Deterministic per-core random number generation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The deterministic RNG used throughout the simulator.
///
/// A type alias so every crate agrees on one generator; `SmallRng` is fast
/// and reproducible for a fixed seed and rand version.
pub type DetRng = SmallRng;

/// SplitMix64 mixing step, used to derive independent per-core seeds from a
/// single run seed.
///
/// This is the standard finaliser from Steele et al.; consecutive inputs
/// produce statistically independent outputs, so `splitmix64(seed, core)`
/// gives each core its own stream as the paper requires.
pub fn splitmix64(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates the RNG for core `core_id` of a run seeded with `run_seed`.
pub fn core_rng(run_seed: u64, core_id: u64) -> DetRng {
    DetRng::seed_from_u64(splitmix64(run_seed, core_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_streams_differ() {
        let a = splitmix64(1, 0);
        let b = splitmix64(1, 1);
        let c = splitmix64(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn core_rng_is_reproducible() {
        let mut r1 = core_rng(7, 3);
        let mut r2 = core_rng(7, 3);
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn core_rng_streams_are_independent() {
        let mut r1 = core_rng(7, 0);
        let mut r2 = core_rng(7, 1);
        let same = (0..64)
            .filter(|_| r1.gen::<u64>() == r2.gen::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}
