//! Fault-injection statistics.

use std::fmt;
use std::ops::AddAssign;

use crate::effect::EffectKind;

/// Counts of injected faults by manifestation class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults that corrupted a live data value.
    pub data: u64,
    /// Faults that perturbed control flow.
    pub control: u64,
    /// Faults that corrupted an address.
    pub addressing: u64,
    /// Faults that were architecturally masked.
    pub silent: u64,
}

impl FaultStats {
    /// Records one fault of class `kind`.
    pub fn record(&mut self, kind: EffectKind) {
        match kind {
            EffectKind::DataValue => self.data += 1,
            EffectKind::ControlFlow => self.control += 1,
            EffectKind::Addressing => self.addressing += 1,
            EffectKind::Silent => self.silent += 1,
        }
    }

    /// Total faults recorded.
    pub fn total(&self) -> u64 {
        self.data + self.control + self.addressing + self.silent
    }

    /// Total faults with a visible architectural effect.
    pub fn visible(&self) -> u64 {
        self.data + self.control + self.addressing
    }
}

impl AddAssign for FaultStats {
    fn add_assign(&mut self, rhs: Self) {
        self.data += rhs.data;
        self.control += rhs.control;
        self.addressing += rhs.addressing;
        self.silent += rhs.silent;
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults: {} data, {} control, {} addressing, {} silent",
            self.data, self.control, self.addressing, self.silent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = FaultStats::default();
        s.record(EffectKind::DataValue);
        s.record(EffectKind::DataValue);
        s.record(EffectKind::ControlFlow);
        s.record(EffectKind::Silent);
        assert_eq!(s.total(), 4);
        assert_eq!(s.visible(), 3);
        assert_eq!(s.data, 2);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = FaultStats {
            data: 1,
            control: 2,
            addressing: 3,
            silent: 4,
        };
        a += a;
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!FaultStats::default().to_string().is_empty());
    }
}
