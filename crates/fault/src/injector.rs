//! Per-core fault scheduling.

use cg_trace::{Event, FaultKindTag, Tracer};
use rand::Rng;

use crate::effect::{EffectKind, EffectModel};
use crate::rng::{core_rng, DetRng};
use crate::stats::FaultStats;

/// Mean time between errors, measured in committed instructions, as in the
/// paper's x-axes ("MTBE (instructions x 1000)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mtbe(u64);

impl Mtbe {
    /// An MTBE of `n` instructions.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn instructions(n: u64) -> Self {
        assert!(n > 0, "MTBE must be positive");
        Mtbe(n)
    }

    /// An MTBE of `n × 1000` instructions (the paper's axis unit).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn kilo_instructions(n: u64) -> Self {
        Mtbe::instructions(n * 1000)
    }

    /// The mean, in instructions.
    pub fn as_instructions(self) -> u64 {
        self.0
    }

    /// The standard sweep used throughout the paper's figures:
    /// 64k..8192k instructions in powers of two.
    pub fn paper_sweep() -> Vec<Mtbe> {
        [64u64, 128, 256, 512, 1024, 2048, 4096, 8192]
            .iter()
            .map(|&k| Mtbe::kilo_instructions(k))
            .collect()
    }
}

impl std::fmt::Display for Mtbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{}k", self.0 / 1000)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// One scheduled fault, positioned in a core's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Core-local committed-instruction count at which the fault strikes.
    pub at_instruction: u64,
    /// Architecture-level manifestation class.
    pub kind: EffectKind,
}

/// Independent fault injector for one simulated core.
///
/// Inter-arrival times are exponentially distributed with the configured
/// mean, mirroring "each error injector picks a random target cycle in the
/// future following the mean error rate" (§6). The injector owns a private
/// deterministic RNG derived from `(run_seed, core_id)`.
#[derive(Debug, Clone)]
pub struct CoreInjector {
    mtbe: Option<Mtbe>,
    model: EffectModel,
    rng: DetRng,
    /// Committed instructions simulated so far on this core.
    now: u64,
    /// Instruction count of the next fault.
    next_at: u64,
    stats: FaultStats,
    /// Trace stream; every scheduled strike is emitted (disabled by
    /// default).
    tracer: Tracer,
}

/// The trace tag for an [`EffectKind`] (the trace crate sits below this
/// one in the dependency order, so the mirror mapping lives here).
pub fn effect_tag(kind: EffectKind) -> FaultKindTag {
    match kind {
        EffectKind::DataValue => FaultKindTag::Data,
        EffectKind::ControlFlow => FaultKindTag::Control,
        EffectKind::Addressing => FaultKindTag::Addressing,
        EffectKind::Silent => FaultKindTag::Silent,
    }
}

impl CoreInjector {
    /// Creates an injector for core `core_id` of a run seeded `run_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `model` fails [`EffectModel::validate`].
    pub fn new(mtbe: Mtbe, model: EffectModel, run_seed: u64, core_id: u64) -> Self {
        model.validate().expect("invalid effect model");
        let mut inj = CoreInjector {
            mtbe: Some(mtbe),
            model,
            rng: core_rng(run_seed, core_id),
            now: 0,
            next_at: 0,
            stats: FaultStats::default(),
            tracer: Tracer::disabled(),
        };
        inj.next_at = inj.draw_next(0);
        inj
    }

    /// Creates an injector that never fires (error-free baseline).
    pub fn disabled(run_seed: u64, core_id: u64) -> Self {
        CoreInjector {
            mtbe: None,
            model: EffectModel::calibrated(),
            rng: core_rng(run_seed, core_id),
            now: 0,
            next_at: u64::MAX,
            stats: FaultStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Connects this injector to a trace stream.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Whether this injector can ever produce faults.
    pub fn is_enabled(&self) -> bool {
        self.mtbe.is_some()
    }

    /// The effect model in use.
    pub fn model(&self) -> &EffectModel {
        &self.model
    }

    /// Mutable access to the private RNG, for sampling perturbation details
    /// with the same deterministic stream.
    pub fn rng_mut(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Advances the core's instruction clock by `instructions` and returns
    /// the faults that strike within the advanced window, in order.
    pub fn advance(&mut self, instructions: u64) -> Vec<FaultEvent> {
        let end = self.now.saturating_add(instructions);
        let mut events = Vec::new();
        while self.next_at < end {
            let kind = self.model.sample_kind(&mut self.rng);
            self.stats.record(kind);
            self.tracer.emit(Event::Fault {
                kind: effect_tag(kind),
                at_instruction: self.next_at,
            });
            events.push(FaultEvent {
                at_instruction: self.next_at,
                kind,
            });
            self.next_at = self.draw_next(self.next_at);
        }
        self.now = end;
        events
    }

    /// Committed instructions simulated so far.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Cumulative fault statistics.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    fn draw_next(&mut self, from: u64) -> u64 {
        match self.mtbe {
            None => u64::MAX,
            Some(mtbe) => {
                // Exponential inter-arrival with the configured mean;
                // 1 - u avoids ln(0).
                let u: f64 = self.rng.gen();
                let gap = -(1.0 - u).ln() * mtbe.as_instructions() as f64;
                from.saturating_add((gap.max(1.0)) as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtbe_display_and_units() {
        assert_eq!(Mtbe::kilo_instructions(512).as_instructions(), 512_000);
        assert_eq!(Mtbe::kilo_instructions(512).to_string(), "512k");
        assert_eq!(Mtbe::instructions(7).to_string(), "7");
        assert_eq!(Mtbe::paper_sweep().len(), 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mtbe_panics() {
        let _ = Mtbe::instructions(0);
    }

    #[test]
    fn disabled_injector_never_fires() {
        let mut inj = CoreInjector::disabled(1, 0);
        assert!(!inj.is_enabled());
        assert!(inj.advance(u64::MAX / 2).is_empty());
    }

    #[test]
    fn fault_rate_matches_mtbe() {
        let mut inj = CoreInjector::new(Mtbe::instructions(1000), EffectModel::calibrated(), 99, 0);
        let events = inj.advance(10_000_000);
        let n = events.len() as f64;
        // Expect ~10_000 events; allow 5% tolerance.
        assert!((n - 10_000.0).abs() < 500.0, "got {n}");
        // Events are ordered and within the window.
        for w in events.windows(2) {
            assert!(w[0].at_instruction <= w[1].at_instruction);
        }
        assert!(events.last().unwrap().at_instruction < 10_000_000);
        assert_eq!(inj.stats().total(), events.len() as u64);
    }

    #[test]
    fn injection_is_deterministic_per_seed_and_core() {
        let run = |seed, core| {
            let mut inj = CoreInjector::new(
                Mtbe::instructions(500),
                EffectModel::calibrated(),
                seed,
                core,
            );
            inj.advance(100_000)
        };
        assert_eq!(run(5, 1), run(5, 1));
        assert_ne!(run(5, 1), run(5, 2));
        assert_ne!(run(5, 1), run(6, 1));
    }

    #[test]
    fn advance_in_chunks_equals_single_advance() {
        let mk = || CoreInjector::new(Mtbe::instructions(100), EffectModel::calibrated(), 4, 7);
        let mut a = mk();
        let whole = a.advance(50_000);
        let mut b = mk();
        let mut chunked = Vec::new();
        for _ in 0..50 {
            chunked.extend(b.advance(1000));
        }
        assert_eq!(whole, chunked);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn chunked_and_whole_advance_emit_identical_trace() {
        use cg_trace::TraceConfig;
        let run = |chunks: &[u64]| {
            let tracer = TraceConfig::ring().tracer();
            let mut inj =
                CoreInjector::new(Mtbe::instructions(100), EffectModel::calibrated(), 4, 7);
            inj.attach_tracer(tracer.clone());
            for &c in chunks {
                let _ = inj.advance(c);
            }
            tracer.finish().expect("enabled")
        };
        let whole = run(&[50_000]);
        let chunked = run(&[1000; 50]);
        assert!(!whole.records.is_empty());
        assert_eq!(whole, chunked, "trace must be chunking-invariant");
    }
}
