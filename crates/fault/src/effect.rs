//! Architecture-level fault effect taxonomy (paper §3).
//!
//! The paper classifies the *manifestations* of register bit flips into
//! data transmission errors (DTE), queue-management errors (QME),
//! and alignment errors (AE) driven by control-flow perturbation. A large
//! fraction of flips is also architecturally masked (dead registers,
//! overwritten-before-use values). [`EffectModel`] captures the rates at
//! which an injected fault lands in each class; the runtime applies the
//! class mechanically to the executing firing.

use rand::Rng;

use crate::rng::DetRng;

/// Manifestation class of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectKind {
    /// A live data value is corrupted (single bit flip in an item that is
    /// being computed, pushed, or popped). Paper class DTE.
    DataValue,
    /// The thread's fine-grained control flow is perturbed, changing how
    /// many items this firing produces/consumes. Source of alignment
    /// errors (paper class AE).
    ControlFlow,
    /// A memory address is corrupted. In a filter this garbles a local
    /// buffer access; when queue state is unprotected it corrupts a
    /// shared head/tail pointer (paper class QME).
    Addressing,
    /// The flip was architecturally masked (dead register or value
    /// overwritten before use); no visible effect.
    Silent,
}

/// Concrete control-flow perturbation applied to a firing.
///
/// PPU cores guarantee forward progress through the scope sequence, so a
/// control error is always bounded to the current firing: it can change the
/// item count of this firing or skip/duplicate a firing body, but it can
/// never hang the thread or escape the scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlPerturbation {
    /// The firing pushes `n` spurious extra items.
    ExtraItems(u32),
    /// The firing fails to push its last `n` items.
    LostItems(u32),
    /// The entire firing body is skipped (its outputs are never produced).
    SkipFiring,
    /// The firing body runs twice (its outputs are duplicated).
    ExtraFiring,
}

/// Rates at which injected faults manifest as each [`EffectKind`].
///
/// Probabilities must sum to 1. The [`EffectModel::calibrated`] constructor
/// returns rates measured by running the mechanistic register-file injector
/// of `cg-vm` over the bundled bytecode kernels; see that crate's
/// `calibration` module for the measurement harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectModel {
    /// Probability a fault corrupts a live data value.
    pub p_data: f64,
    /// Probability a fault perturbs control flow.
    pub p_control: f64,
    /// Probability a fault corrupts an address.
    pub p_addressing: f64,
    /// Probability a fault is architecturally masked.
    pub p_silent: f64,
    /// Geometric-distribution parameter for perturbation magnitudes
    /// (expected extra/lost item count is `1 / magnitude_p`).
    pub magnitude_p: f64,
    /// Probability that a control perturbation affects a whole firing
    /// (skip/duplicate) rather than an item count.
    pub p_whole_firing: f64,
}

impl EffectModel {
    /// Rates calibrated against the `cg-vm` register-file injector
    /// (`cg_vm::calibration::measure_effect_rates`, 16-register cores on
    /// the bundled FIR/FFT/moving-average kernels).
    pub fn calibrated() -> Self {
        EffectModel {
            p_data: 0.13,
            p_control: 0.18,
            p_addressing: 0.05,
            p_silent: 0.64,
            magnitude_p: 0.5,
            p_whole_firing: 0.10,
        }
    }

    /// A model where every fault corrupts data — useful for isolating
    /// DTE behaviour in tests.
    pub fn data_only() -> Self {
        EffectModel {
            p_data: 1.0,
            p_control: 0.0,
            p_addressing: 0.0,
            p_silent: 0.0,
            magnitude_p: 0.5,
            p_whole_firing: 0.0,
        }
    }

    /// A model where every fault perturbs control flow — the worst case
    /// for alignment, used to stress the AM FSM.
    pub fn control_only() -> Self {
        EffectModel {
            p_data: 0.0,
            p_control: 1.0,
            p_addressing: 0.0,
            p_silent: 0.0,
            magnitude_p: 0.5,
            p_whole_firing: 0.10,
        }
    }

    /// Validates that the class probabilities form a distribution.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let sum = self.p_data + self.p_control + self.p_addressing + self.p_silent;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("effect probabilities sum to {sum}, expected 1"));
        }
        for (name, p) in [
            ("p_data", self.p_data),
            ("p_control", self.p_control),
            ("p_addressing", self.p_addressing),
            ("p_silent", self.p_silent),
            ("p_whole_firing", self.p_whole_firing),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} outside [0, 1]"));
            }
        }
        if !(self.magnitude_p > 0.0 && self.magnitude_p <= 1.0) {
            return Err(format!("magnitude_p = {} outside (0, 1]", self.magnitude_p));
        }
        Ok(())
    }

    /// Samples the manifestation class of one fault.
    pub fn sample_kind(&self, rng: &mut DetRng) -> EffectKind {
        let u: f64 = rng.gen();
        if u < self.p_data {
            EffectKind::DataValue
        } else if u < self.p_data + self.p_control {
            EffectKind::ControlFlow
        } else if u < self.p_data + self.p_control + self.p_addressing {
            EffectKind::Addressing
        } else {
            EffectKind::Silent
        }
    }

    /// Samples the concrete perturbation for a control-flow fault.
    pub fn sample_perturbation(&self, rng: &mut DetRng) -> ControlPerturbation {
        if rng.gen::<f64>() < self.p_whole_firing {
            if rng.gen::<bool>() {
                ControlPerturbation::SkipFiring
            } else {
                ControlPerturbation::ExtraFiring
            }
        } else {
            let n = sample_geometric(self.magnitude_p, rng).min(64);
            if rng.gen::<bool>() {
                ControlPerturbation::ExtraItems(n)
            } else {
                ControlPerturbation::LostItems(n)
            }
        }
    }
}

impl Default for EffectModel {
    fn default() -> Self {
        EffectModel::calibrated()
    }
}

/// Samples from a geometric distribution on {1, 2, ...} with success
/// probability `p`.
fn sample_geometric(p: f64, rng: &mut DetRng) -> u32 {
    debug_assert!(p > 0.0 && p <= 1.0);
    let mut n = 1u32;
    while rng.gen::<f64>() >= p && n < u32::MAX {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::core_rng;

    #[test]
    fn calibrated_model_is_valid() {
        EffectModel::calibrated().validate().unwrap();
        EffectModel::data_only().validate().unwrap();
        EffectModel::control_only().validate().unwrap();
    }

    #[test]
    fn invalid_models_rejected() {
        let mut m = EffectModel::calibrated();
        m.p_data += 0.5;
        assert!(m.validate().is_err());
        let mut m = EffectModel::calibrated();
        m.magnitude_p = 0.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn sample_kind_matches_rates_roughly() {
        let model = EffectModel::calibrated();
        let mut rng = core_rng(11, 0);
        let n = 100_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            match model.sample_kind(&mut rng) {
                EffectKind::DataValue => counts[0] += 1,
                EffectKind::ControlFlow => counts[1] += 1,
                EffectKind::Addressing => counts[2] += 1,
                EffectKind::Silent => counts[3] += 1,
            }
        }
        let frac = |c: u32| f64::from(c) / f64::from(n);
        assert!((frac(counts[0]) - model.p_data).abs() < 0.01);
        assert!((frac(counts[1]) - model.p_control).abs() < 0.01);
        assert!((frac(counts[2]) - model.p_addressing).abs() < 0.01);
        assert!((frac(counts[3]) - model.p_silent).abs() < 0.01);
    }

    #[test]
    fn data_only_always_data() {
        let model = EffectModel::data_only();
        let mut rng = core_rng(3, 0);
        for _ in 0..100 {
            assert_eq!(model.sample_kind(&mut rng), EffectKind::DataValue);
        }
    }

    #[test]
    fn perturbation_magnitudes_are_bounded() {
        let model = EffectModel::calibrated();
        let mut rng = core_rng(5, 0);
        for _ in 0..1000 {
            match model.sample_perturbation(&mut rng) {
                ControlPerturbation::ExtraItems(n) | ControlPerturbation::LostItems(n) => {
                    assert!((1..=64).contains(&n));
                }
                ControlPerturbation::SkipFiring | ControlPerturbation::ExtraFiring => {}
            }
        }
    }

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let mut rng = core_rng(9, 0);
        let n = 50_000;
        let sum: u64 = (0..n)
            .map(|_| u64::from(sample_geometric(0.5, &mut rng)))
            .sum();
        let mean = sum as f64 / f64::from(n);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }
}
