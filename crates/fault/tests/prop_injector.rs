//! Property tests for the per-core fault injector.
//!
//! The executor charges a firing's instructions in one `advance` call,
//! but nothing in the design depends on that granularity: the injected
//! fault sequence must be a function of the *instruction timeline alone*,
//! not of how the timeline is chopped into advances.

use cg_fault::{CoreInjector, EffectModel, Mtbe};
use proptest::prelude::*;

fn events_of(mtbe: u64, seed: u64, core: u64, chunks: &[u64]) -> Vec<(u64, cg_fault::EffectKind)> {
    let mut inj = CoreInjector::new(
        Mtbe::instructions(mtbe),
        EffectModel::calibrated(),
        seed,
        core,
    );
    let mut out = Vec::new();
    for &c in chunks {
        for ev in inj.advance(c) {
            out.push((ev.at_instruction, ev.kind));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Chunking invariance: advancing the instruction clock in arbitrary
    /// chunks produces exactly the events (same strike times, same kinds,
    /// same order) as advancing it in a single call.
    #[test]
    fn advance_is_chunking_invariant(
        mtbe in 1u64..1000,
        seed in any::<u64>(),
        core in 0u64..16,
        chunks in prop::collection::vec(0u64..500, 1..40),
    ) {
        let total: u64 = chunks.iter().sum();
        let whole = events_of(mtbe, seed, core, &[total]);
        let split = events_of(mtbe, seed, core, &chunks);
        prop_assert_eq!(whole, split);
    }

    /// Strike times are strictly increasing and within the advanced
    /// window, no matter the chunking.
    #[test]
    fn strikes_are_ordered_and_in_window(
        mtbe in 1u64..200,
        seed in any::<u64>(),
        chunks in prop::collection::vec(1u64..300, 1..20),
    ) {
        let total: u64 = chunks.iter().sum();
        let events = events_of(mtbe, seed, 0, &chunks);
        for w in events.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "strike times must increase");
        }
        for (at, _) in events {
            prop_assert!(at < total);
        }
    }

    /// Zero-length advances are free: they produce no events and do not
    /// perturb the subsequent stream.
    #[test]
    fn zero_advances_are_inert(
        mtbe in 1u64..500,
        seed in any::<u64>(),
        n in 1u64..2000,
    ) {
        let plain = events_of(mtbe, seed, 3, &[n]);
        let padded = events_of(mtbe, seed, 3, &[0, 0, n, 0]);
        prop_assert_eq!(plain, padded);
    }
}
