//! The [`Tracer`] handle threaded through the stack.
//!
//! Every traced component (queues, injectors, guards, the executor)
//! holds a clone of one `Tracer`. A disabled tracer is a `None` — the
//! emit path is a single branch, so tracing is zero-cost when off (the
//! ablation bench verifies this). An enabled tracer shares one inner
//! state: the execution context (core, scheduler round, frame counter)
//! that the executor updates as it multiplexes cores, a global sequence
//! counter, aggregate [`TraceCounts`], and the configured [`TraceSink`].
//!
//! The handle is `Send + Sync` (`Arc<Mutex<…>>`) because the threaded
//! executor shares queues and guards across OS threads; the
//! deterministic executor is single-threaded, so the lock is always
//! uncontended where determinism matters.

use std::sync::{Arc, Mutex};

use crate::event::{CoreId, Event, TraceRecord, MACHINE_CORE};
use crate::sink::{NoopSink, RingSink, TraceCounts, TraceData, TraceSink};

/// How a run should be traced. Part of the runtime `SimConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceConfig {
    /// No tracer at all: the zero-cost default.
    #[default]
    Off,
    /// Stamp and count every event but retain no records
    /// ([`NoopSink`] — the dispatch-cost ablation point).
    Counting,
    /// Retain the most recent `capacity` records in a ring buffer.
    Ring {
        /// Maximum records retained.
        capacity: usize,
    },
}

impl TraceConfig {
    /// The default ring capacity used by `--trace` flags (2^16 records —
    /// a few MiB, enough for thousands of rounds of history).
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

    /// A ring-buffer config at the default capacity.
    pub fn ring() -> Self {
        TraceConfig::Ring {
            capacity: Self::DEFAULT_RING_CAPACITY,
        }
    }

    /// Builds the tracer this configuration describes.
    pub fn tracer(self) -> Tracer {
        match self {
            TraceConfig::Off => Tracer::disabled(),
            TraceConfig::Counting => Tracer::new(Box::new(NoopSink)),
            TraceConfig::Ring { capacity } => Tracer::new(Box::new(RingSink::new(capacity))),
        }
    }

    /// `true` unless this is [`TraceConfig::Off`].
    pub fn is_enabled(self) -> bool {
        self != TraceConfig::Off
    }
}

#[derive(Debug)]
struct Inner {
    seq: u64,
    core: CoreId,
    round: u64,
    frame: u32,
    counts: TraceCounts,
    sink: Box<dyn TraceSink>,
}

/// A cloneable handle to one run's trace stream (or to nothing).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// The zero-cost disabled tracer.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer feeding `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Inner {
                seq: 0,
                core: MACHINE_CORE,
                round: 0,
                frame: 0,
                counts: TraceCounts::default(),
                sink,
            }))),
        }
    }

    /// Whether events will be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Updates the execution context stamped onto subsequent events.
    /// The executor calls this once per core visit (and around watchdog
    /// interventions); emitting sites never need to know their context.
    #[inline]
    pub fn set_context(&self, core: CoreId, round: u64, frame: u32) {
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("tracer lock");
        g.core = core;
        g.round = round;
        g.frame = frame;
    }

    /// Stamps and records one event. A no-op when disabled.
    #[inline]
    pub fn emit(&self, event: Event) {
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("tracer lock");
        let rec = TraceRecord {
            seq: g.seq,
            round: g.round,
            core: g.core,
            frame: g.frame,
            event,
        };
        g.seq += 1;
        g.counts.observe(&rec);
        g.sink.record(&rec);
    }

    /// Drains the sink, returning everything recorded. `None` when the
    /// tracer is disabled.
    pub fn finish(&self) -> Option<TraceData> {
        let inner = self.inner.as_ref()?;
        let mut g = inner.lock().expect("tracer lock");
        let (records, dropped) = g.sink.drain();
        Some(TraceData {
            records,
            counts: g.counts.clone(),
            dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.set_context(3, 9, 1);
        t.emit(Event::Watchdog { rung: 1 });
        assert_eq!(t.finish(), None);
    }

    #[test]
    fn context_is_stamped_onto_records() {
        let t = TraceConfig::ring().tracer();
        t.set_context(2, 41, 7);
        t.emit(Event::FrameBoundary { frame: 7 });
        t.set_context(MACHINE_CORE, 42, 0);
        t.emit(Event::Watchdog { rung: 2 });
        let data = t.finish().expect("enabled");
        assert_eq!(data.records.len(), 2);
        let a = data.records[0];
        assert_eq!((a.seq, a.round, a.core, a.frame), (0, 41, 2, 7));
        let b = data.records[1];
        assert_eq!((b.seq, b.round, b.core, b.frame), (1, 42, MACHINE_CORE, 0));
        assert_eq!(data.counts.events, 2);
        assert_eq!(data.dropped, 0);
    }

    #[test]
    fn clones_share_one_stream() {
        let t = TraceConfig::ring().tracer();
        let u = t.clone();
        t.emit(Event::Watchdog { rung: 1 });
        u.emit(Event::Watchdog { rung: 2 });
        let data = t.finish().expect("enabled");
        assert_eq!(data.records.len(), 2);
        assert_eq!(
            data.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn counting_mode_counts_without_retaining() {
        let t = TraceConfig::Counting.tracer();
        for _ in 0..10 {
            t.emit(Event::Watchdog { rung: 3 });
        }
        let data = t.finish().expect("enabled");
        assert!(data.records.is_empty());
        assert_eq!(data.counts.count(EventKind::Watchdog), 10);
    }

    #[test]
    fn ring_overflow_is_reported() {
        let t = TraceConfig::Ring { capacity: 4 }.tracer();
        for _ in 0..10 {
            t.emit(Event::Watchdog { rung: 1 });
        }
        let data = t.finish().expect("enabled");
        assert_eq!(data.records.len(), 4);
        assert_eq!(data.dropped, 6);
        assert_eq!(data.counts.events, 10, "counts cover dropped records");
    }

    #[test]
    fn tracer_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<Tracer>();
    }
}
