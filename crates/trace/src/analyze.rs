//! Post-mortem fault-propagation analysis.
//!
//! Walks a recorded trace and reconstructs, for every realignment
//! episode, the *propagation chain* the paper reasons about (§4, §7):
//! fault injection → first misaligned pop (the AM leaves an aligned
//! state) → discard/pad episode → the round the AM realigned. Also
//! aggregates realignment-latency and per-edge queue-occupancy
//! histograms, so a campaign summary can show not just *how many*
//! episodes occurred but how long recovery took and how full the queues
//! ran.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{CoreId, Event, FaultKindTag, RealignTag, TraceRecord};

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts (index = log2 bucket).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub total: u64,
    /// Largest sample.
    pub max: u64,
    /// Sum of all samples (for the mean).
    pub sum: u64,
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros()) as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.total += 1;
        self.max = self.max.max(v);
        self.sum += v;
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    fn bucket_label(i: usize) -> String {
        if i == 0 {
            "0".to_string()
        } else {
            format!("{}..{}", 1u64 << (i - 1), (1u64 << i) - 1)
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.total == 0 {
            return write!(f, "  (no samples)");
        }
        writeln!(
            f,
            "  samples={} mean={:.1} max={}",
            self.total,
            self.mean(),
            self.max
        )?;
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
            writeln!(f, "  {:>12} | {:<40} {}", Self::bucket_label(i), bar, n)?;
        }
        Ok(())
    }
}

/// One reconstructed injection→recovery chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationChain {
    /// Core whose AM ran the episode (the consumer side).
    pub core: CoreId,
    /// Incoming port on that core.
    pub port: u32,
    /// Pad or discard.
    pub kind: RealignTag,
    /// The most recent injection before the episode began:
    /// (faulted core, round, manifestation, instruction). `None` when the
    /// episode has no recorded injection upstream of it (e.g. ring
    /// overflow dropped it, or the episode was timeout-induced).
    pub injection: Option<(CoreId, u64, FaultKindTag, u64)>,
    /// Round the AM left alignment — the first misaligned pop.
    pub detect_round: u64,
    /// Consumer frame computation at detection.
    pub start_frame: u32,
    /// Round the AM re-entered an aligned state (`None` = never, within
    /// the recorded window).
    pub realign_round: Option<u64>,
}

impl PropagationChain {
    /// Rounds from detection to realignment, when the episode closed.
    pub fn latency_rounds(&self) -> Option<u64> {
        self.realign_round
            .map(|r| r.saturating_sub(self.detect_round))
    }
}

impl fmt::Display for PropagationChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.injection {
            Some((core, round, kind, at)) => write!(
                f,
                "{} fault on core {} @ round {} (instr {}) -> ",
                kind.label(),
                core,
                round,
                at
            )?,
            None => write!(f, "(no recorded injection) -> ")?,
        }
        write!(
            f,
            "first misaligned pop core {} port {} @ round {} -> {} episode (frame {})",
            self.core,
            self.port,
            self.detect_round,
            self.kind.label(),
            self.start_frame
        )?;
        match self.realign_round {
            Some(r) => write!(
                f,
                " -> realigned @ round {} (latency {} rounds)",
                r,
                self.latency_rounds().unwrap_or(0)
            ),
            None => write!(f, " -> never realigned in recorded window"),
        }
    }
}

/// Full analysis of one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Analysis {
    /// Reconstructed chains, in detection order.
    pub chains: Vec<PropagationChain>,
    /// Latency (rounds) of the chains that closed.
    pub realign_latency: Histogram,
    /// Queue occupancy after each push/pop, per edge.
    pub occupancy: BTreeMap<u32, Histogram>,
    /// Total recorded injections.
    pub faults: u64,
    /// Injections that were architecturally silent.
    pub silent_faults: u64,
    /// Watchdog rungs fired.
    pub watchdog_actions: u64,
    /// QM timeouts fired.
    pub qm_timeouts: u64,
    /// Frames rolled back and re-executed (recovery rung).
    pub frame_retries: u64,
    /// Frames degraded after retry-budget exhaustion or watchdog rung 4.
    pub frame_degrades: u64,
}

impl Analysis {
    /// Chains with a linked upstream injection.
    pub fn linked_chains(&self) -> usize {
        self.chains.iter().filter(|c| c.injection.is_some()).count()
    }
}

/// Reconstructs propagation chains and aggregate histograms from a
/// record stream (must be in emission order, as drained from a sink).
pub fn analyze(records: &[TraceRecord]) -> Analysis {
    let mut out = Analysis::default();
    // Most recent non-silent injection seen so far, trace-wide: a fault on
    // a producer core surfaces as misalignment on its *consumers*, so the
    // link is deliberately cross-core.
    let mut last_injection: Option<(CoreId, u64, FaultKindTag, u64)> = None;
    // Open episode per (core, port): index into out.chains.
    let mut open: BTreeMap<(CoreId, u32), usize> = BTreeMap::new();

    for rec in records {
        match rec.event {
            Event::Fault {
                kind,
                at_instruction,
            } => {
                out.faults += 1;
                if kind == FaultKindTag::Silent {
                    out.silent_faults += 1;
                } else {
                    last_injection = Some((rec.core, rec.round, kind, at_instruction));
                }
            }
            Event::Push { edge, depth, .. }
            | Event::Pop { edge, depth, .. }
            | Event::TimeoutPush { edge, depth, .. }
            | Event::TimeoutPop { edge, depth } => {
                out.occupancy.entry(edge).or_default().record(depth as u64);
            }
            Event::RealignStart { port, kind, frame } => {
                // A fresh start on an already-open port means the AM moved
                // between abnormal flavours; keep the original chain open
                // (it tracks the full outage) and note nothing new.
                if let std::collections::btree_map::Entry::Vacant(e) = open.entry((rec.core, port))
                {
                    e.insert(out.chains.len());
                    out.chains.push(PropagationChain {
                        core: rec.core,
                        port,
                        kind,
                        injection: last_injection,
                        detect_round: rec.round,
                        start_frame: frame,
                        realign_round: None,
                    });
                }
            }
            Event::RealignEnd { port, .. } => {
                if let Some(idx) = open.remove(&(rec.core, port)) {
                    let chain = &mut out.chains[idx];
                    chain.realign_round = Some(rec.round);
                    out.realign_latency
                        .record(rec.round.saturating_sub(chain.detect_round));
                }
            }
            Event::Watchdog { .. } => out.watchdog_actions += 1,
            Event::QmTimeout { .. } => out.qm_timeouts += 1,
            Event::FrameRetry { .. } => out.frame_retries += 1,
            Event::FrameDegraded { .. } => out.frame_degrades += 1,
            _ => {}
        }
    }
    out
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "faults={} (silent={})  chains={} (linked={})  qm-timeouts={}  watchdog={}  \
             retries={}  degrades={}",
            self.faults,
            self.silent_faults,
            self.chains.len(),
            self.linked_chains(),
            self.qm_timeouts,
            self.watchdog_actions,
            self.frame_retries,
            self.frame_degrades
        )?;
        for (i, chain) in self.chains.iter().enumerate() {
            writeln!(f, "chain {}: {}", i + 1, chain)?;
        }
        writeln!(f, "realignment latency (rounds):")?;
        write!(f, "{}", self.realign_latency)?;
        for (edge, hist) in &self.occupancy {
            writeln!(f, "queue occupancy, edge {edge}:")?;
            write!(f, "{hist}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, round: u64, core: CoreId, frame: u32, event: Event) -> TraceRecord {
        TraceRecord {
            seq,
            round,
            core,
            frame,
            event,
        }
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.total, 9);
        assert_eq!(h.max, 100);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 2); // 1,1
        assert_eq!(h.buckets[2], 2); // 2,3
        assert_eq!(h.buckets[3], 2); // 4,7
        assert_eq!(h.buckets[4], 1); // 8
        assert_eq!(h.buckets[7], 1); // 100 in 64..127
        assert!((h.mean() - 126.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn chain_links_injection_to_episode_and_realignment() {
        let records = vec![
            rec(
                0,
                5,
                0,
                1,
                Event::Fault {
                    kind: FaultKindTag::Control,
                    at_instruction: 777,
                },
            ),
            rec(
                1,
                9,
                1,
                1,
                Event::RealignStart {
                    port: 0,
                    kind: RealignTag::Discard,
                    frame: 1,
                },
            ),
            rec(2, 16, 1, 2, Event::RealignEnd { port: 0, frame: 2 }),
        ];
        let a = analyze(&records);
        assert_eq!(a.faults, 1);
        assert_eq!(a.chains.len(), 1);
        let c = &a.chains[0];
        assert_eq!(c.injection, Some((0, 5, FaultKindTag::Control, 777)));
        assert_eq!(c.detect_round, 9);
        assert_eq!(c.realign_round, Some(16));
        assert_eq!(c.latency_rounds(), Some(7));
        assert_eq!(a.realign_latency.total, 1);
        let line = c.to_string();
        assert!(line.contains("control fault on core 0 @ round 5"), "{line}");
        assert!(line.contains("latency 7 rounds"), "{line}");
    }

    #[test]
    fn silent_faults_do_not_link() {
        let records = vec![
            rec(
                0,
                1,
                0,
                0,
                Event::Fault {
                    kind: FaultKindTag::Silent,
                    at_instruction: 1,
                },
            ),
            rec(
                1,
                2,
                1,
                0,
                Event::RealignStart {
                    port: 0,
                    kind: RealignTag::Pad,
                    frame: 0,
                },
            ),
        ];
        let a = analyze(&records);
        assert_eq!(a.silent_faults, 1);
        assert_eq!(a.chains.len(), 1);
        assert_eq!(a.chains[0].injection, None);
        assert_eq!(a.chains[0].realign_round, None);
        assert_eq!(a.linked_chains(), 0);
    }

    #[test]
    fn nested_starts_keep_one_chain_open() {
        let records = vec![
            rec(
                0,
                3,
                2,
                0,
                Event::RealignStart {
                    port: 1,
                    kind: RealignTag::Discard,
                    frame: 0,
                },
            ),
            rec(
                1,
                4,
                2,
                0,
                Event::RealignStart {
                    port: 1,
                    kind: RealignTag::Pad,
                    frame: 0,
                },
            ),
            rec(2, 8, 2, 1, Event::RealignEnd { port: 1, frame: 1 }),
        ];
        let a = analyze(&records);
        assert_eq!(a.chains.len(), 1, "abnormal->abnormal keeps chain open");
        assert_eq!(a.chains[0].kind, RealignTag::Discard);
        assert_eq!(a.chains[0].latency_rounds(), Some(5));
    }

    #[test]
    fn occupancy_is_per_edge() {
        let records = vec![
            rec(
                0,
                1,
                0,
                0,
                Event::Push {
                    edge: 0,
                    header: false,
                    depth: 3,
                },
            ),
            rec(
                1,
                2,
                1,
                0,
                Event::Pop {
                    edge: 1,
                    header: false,
                    depth: 9,
                },
            ),
        ];
        let a = analyze(&records);
        assert_eq!(a.occupancy.len(), 2);
        assert_eq!(a.occupancy[&0].max, 3);
        assert_eq!(a.occupancy[&1].max, 9);
    }
}
