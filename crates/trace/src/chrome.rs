//! Chrome Trace Event / Perfetto JSON exporter.
//!
//! Converts a trace into the Trace Event Format consumed by
//! `ui.perfetto.dev` and `chrome://tracing`: one process, one thread per
//! core, scheduler rounds as the microsecond timestamp axis. Faults,
//! header insertions, QM timeouts, frame boundaries and watchdog rungs
//! become instant events; realignment episodes become duration ("X")
//! slices so pad/discard windows are visible as bars on the offending
//! core's track; queue occupancy becomes counter tracks (one per edge).
//!
//! Output is hand-rolled JSON (the workspace is offline — no serde) and
//! deterministic: same records in, byte-identical JSON out.

use crate::event::{CoreId, Event, TraceRecord, MACHINE_CORE};

/// Escapes a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn tid(core: CoreId) -> u64 {
    core as u64
}

fn meta_thread(core: CoreId, name: &str, out: &mut Vec<String>) {
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
        tid(core),
        esc(name)
    ));
    // sort_index keeps core tracks in core order with the machine track last.
    let sort = if core == MACHINE_CORE {
        u32::MAX as u64
    } else {
        core as u64
    };
    out.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{}}}}}",
        tid(core),
        sort
    ));
}

fn instant(core: CoreId, ts: u64, name: &str, args: &str, out: &mut Vec<String>) {
    out.push(format!(
        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"{}\",\"args\":{{{}}}}}",
        tid(core),
        ts,
        esc(name),
        args
    ));
}

fn counter(ts: u64, name: &str, value: u32, out: &mut Vec<String>) {
    out.push(format!(
        "{{\"ph\":\"C\",\"pid\":0,\"ts\":{},\"name\":\"{}\",\"args\":{{\"depth\":{}}}}}",
        ts,
        esc(name),
        value
    ));
}

/// An open realignment slice, keyed by (core, port).
struct OpenEpisode {
    start_round: u64,
    name: String,
    frame: u32,
}

/// Renders records as a Chrome Trace Event JSON document.
///
/// `process_name` labels the single process track (use the app name).
pub fn to_chrome_json(process_name: &str, records: &[TraceRecord]) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
        esc(process_name)
    ));

    // Thread metadata for every core that appears, in deterministic order.
    let mut cores: Vec<CoreId> = records.iter().map(|r| r.core).collect();
    cores.sort_unstable();
    cores.dedup();
    for &core in &cores {
        if core == MACHINE_CORE {
            meta_thread(core, "machine", &mut events);
        } else {
            meta_thread(core, &format!("core {core}"), &mut events);
        }
    }

    let mut open: std::collections::HashMap<(CoreId, u32), OpenEpisode> =
        std::collections::HashMap::new();
    let mut last_round = 0u64;

    for rec in records {
        let ts = rec.round;
        last_round = last_round.max(ts);
        match rec.event {
            Event::Fault {
                kind,
                at_instruction,
            } => instant(
                rec.core,
                ts,
                &format!("fault:{}", kind.label()),
                &format!("\"at_instruction\":{at_instruction}"),
                &mut events,
            ),
            Event::Push { edge, .. }
            | Event::Pop { edge, .. }
            | Event::TimeoutPush { edge, .. }
            | Event::TimeoutPop { edge, .. } => {
                let depth = match rec.event {
                    Event::Push { depth, .. }
                    | Event::Pop { depth, .. }
                    | Event::TimeoutPush { depth, .. }
                    | Event::TimeoutPop { depth, .. } => depth,
                    _ => unreachable!(),
                };
                counter(ts, &format!("q{edge}"), depth, &mut events);
            }
            Event::PointerCorrupt { edge, which, bit } => instant(
                rec.core,
                ts,
                &format!("ptr-corrupt:{}", which.label()),
                &format!("\"edge\":{edge},\"bit\":{bit}"),
                &mut events,
            ),
            Event::HeaderCorrupt { edge, bits } => instant(
                rec.core,
                ts,
                "hdr-corrupt",
                &format!("\"edge\":{edge},\"bits\":{bits}"),
                &mut events,
            ),
            Event::HeaderInserted {
                port,
                frame,
                forced,
            } => instant(
                rec.core,
                ts,
                "hdr-insert",
                &format!("\"port\":{port},\"frame\":{frame},\"forced\":{forced}"),
                &mut events,
            ),
            Event::AmTransition { .. } => {
                // Transitions are visible through the realignment slices;
                // as instants they would flood the timeline.
            }
            Event::RealignStart { port, kind, frame } => {
                // A new episode on the same port implicitly closes the
                // previous one (the AM jumped between abnormal states).
                if let Some(ep) = open.remove(&(rec.core, port)) {
                    close_episode(rec.core, port, ep, ts, &mut events);
                }
                open.insert(
                    (rec.core, port),
                    OpenEpisode {
                        start_round: ts,
                        name: format!("realign:{} p{}", kind.label(), port),
                        frame,
                    },
                );
            }
            Event::RealignEnd { port, .. } => {
                if let Some(ep) = open.remove(&(rec.core, port)) {
                    close_episode(rec.core, port, ep, ts, &mut events);
                }
            }
            Event::FrameBoundary { frame } => instant(
                rec.core,
                ts,
                "frame",
                &format!("\"frame\":{frame}"),
                &mut events,
            ),
            Event::QmTimeout { port, dir } => instant(
                rec.core,
                ts,
                &format!("qm-timeout:{}", dir.label()),
                &format!("\"port\":{port}"),
                &mut events,
            ),
            Event::Watchdog { rung } => instant(
                rec.core,
                ts,
                &format!("watchdog:rung{rung}"),
                &format!("\"rung\":{rung}"),
                &mut events,
            ),
            Event::FrameRetry { frame, attempt } => instant(
                rec.core,
                ts,
                "frame-retry",
                &format!("\"frame\":{frame},\"attempt\":{attempt}"),
                &mut events,
            ),
            Event::FrameDegraded { frame } => instant(
                rec.core,
                ts,
                "frame-degraded",
                &format!("\"frame\":{frame}"),
                &mut events,
            ),
            Event::RunEnd { completed } => instant(
                rec.core,
                ts,
                "run-end",
                &format!("\"completed\":{completed}"),
                &mut events,
            ),
        }
    }

    // Close episodes still open at the end of the trace, in deterministic
    // key order.
    let mut leftovers: Vec<((CoreId, u32), OpenEpisode)> = open.drain().collect();
    leftovers.sort_by_key(|(k, _)| *k);
    for ((core, port), ep) in leftovers {
        close_episode(core, port, ep, last_round + 1, &mut events);
    }

    format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
}

fn close_episode(core: CoreId, port: u32, ep: OpenEpisode, end: u64, out: &mut Vec<String>) {
    let dur = end.saturating_sub(ep.start_round).max(1);
    out.push(format!(
        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"args\":{{\"port\":{},\"frame\":{}}}}}",
        tid(core),
        ep.start_round,
        dur,
        esc(&ep.name),
        port,
        ep.frame
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FaultKindTag, RealignTag};
    use crate::json_check::validate;

    fn rec(seq: u64, round: u64, core: CoreId, event: Event) -> TraceRecord {
        TraceRecord {
            seq,
            round,
            core,
            frame: 0,
            event,
        }
    }

    #[test]
    fn exporter_produces_valid_json() {
        let records = vec![
            rec(
                0,
                1,
                0,
                Event::Fault {
                    kind: FaultKindTag::Data,
                    at_instruction: 42,
                },
            ),
            rec(
                1,
                2,
                1,
                Event::RealignStart {
                    port: 0,
                    kind: RealignTag::Pad,
                    frame: 3,
                },
            ),
            rec(2, 5, 1, Event::RealignEnd { port: 0, frame: 4 }),
            rec(
                3,
                6,
                0,
                Event::Push {
                    edge: 0,
                    header: false,
                    depth: 2,
                },
            ),
            rec(4, 7, MACHINE_CORE, Event::Watchdog { rung: 1 }),
        ];
        let json = to_chrome_json("complex-fir", &records);
        validate(&json).expect("valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("fault:data"));
        assert!(json.contains("realign:pad p0"));
        assert!(json.contains("\"dur\":3"));
        assert!(json.contains("\"name\":\"machine\""));
        assert!(json.contains("\"name\":\"q0\""));
    }

    #[test]
    fn unclosed_episode_is_flushed() {
        let records = vec![rec(
            0,
            10,
            2,
            Event::RealignStart {
                port: 1,
                kind: RealignTag::Discard,
                frame: 0,
            },
        )];
        let json = to_chrome_json("app", &records);
        validate(&json).expect("valid JSON");
        assert!(json.contains("realign:discard p1"));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn export_is_deterministic() {
        let records: Vec<TraceRecord> = (0..20)
            .map(|i| {
                rec(
                    i,
                    i,
                    (i % 3) as u32,
                    Event::RealignStart {
                        port: (i % 2) as u32,
                        kind: RealignTag::Pad,
                        frame: i as u32,
                    },
                )
            })
            .collect();
        assert_eq!(
            to_chrome_json("app", &records),
            to_chrome_json("app", &records)
        );
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
