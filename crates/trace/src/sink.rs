//! Trace sinks: where stamped records go.
//!
//! The [`crate::Tracer`] maintains aggregate [`TraceCounts`] itself and
//! forwards every record to exactly one [`TraceSink`]. Two sinks are
//! provided: [`NoopSink`] (discards records — measures pure dispatch
//! cost, and backs the counting-only trace mode) and [`RingSink`] (a
//! bounded ring buffer that keeps the most recent records and counts
//! what it had to drop).

use crate::event::{EventKind, TraceRecord};

/// Aggregate per-category counters, maintained for every enabled tracer
/// regardless of sink.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// Total events observed.
    pub events: u64,
    /// Events per [`EventKind`], indexed by declaration order.
    pub by_kind: [u64; EventKind::COUNT],
    /// Maximum queue depth observed across all push/pop events.
    pub max_queue_depth: u32,
}

impl TraceCounts {
    /// Records one event into the counters.
    pub fn observe(&mut self, rec: &TraceRecord) {
        self.events += 1;
        self.by_kind[rec.event.kind() as usize] += 1;
        match rec.event {
            crate::Event::Push { depth, .. }
            | crate::Event::Pop { depth, .. }
            | crate::Event::TimeoutPush { depth, .. }
            | crate::Event::TimeoutPop { depth, .. } => {
                self.max_queue_depth = self.max_queue_depth.max(depth);
            }
            _ => {}
        }
    }

    /// Count for one category.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.by_kind[kind as usize]
    }

    /// Realignment episodes started (one per AM pad/discard entry — the
    /// figure `RunReport::realignment_episodes` is cross-checked against).
    pub fn realign_episodes(&self) -> u64 {
        self.count(EventKind::RealignStart)
    }

    /// Fault injections observed.
    pub fn faults(&self) -> u64 {
        self.count(EventKind::Fault)
    }
}

/// Everything a drained tracer hands back.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// Retained records, in emission order.
    pub records: Vec<TraceRecord>,
    /// Aggregate counters over **all** events, including dropped ones.
    pub counts: TraceCounts,
    /// Records the sink discarded (ring-buffer overflow).
    pub dropped: u64,
}

/// Destination for stamped trace records.
pub trait TraceSink: Send + std::fmt::Debug {
    /// Accepts one record.
    fn record(&mut self, rec: &TraceRecord);
    /// Removes and returns everything retained so far, plus the count of
    /// records discarded along the way.
    fn drain(&mut self) -> (Vec<TraceRecord>, u64);
}

/// A sink that discards every record. Exists to measure the cost of the
/// tracing *dispatch path* (context stamping + counting) in isolation:
/// the ablation bench compares a fully disabled tracer against a
/// `NoopSink`-backed one and flags any regression of the disabled path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _rec: &TraceRecord) {}

    fn drain(&mut self) -> (Vec<TraceRecord>, u64) {
        (Vec::new(), 0)
    }
}

/// A bounded ring buffer keeping the most recent `capacity` records.
///
/// Overflow drops the *oldest* records (the interesting tail of a failing
/// run is the recent past) and counts every drop, so the post-mortem
/// analyzer can state exactly how much history it is missing.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: std::collections::VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingSink {
    /// A ring retaining at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            buf: std::collections::VecDeque::with_capacity(capacity.min(1 << 16)),
            dropped: 0,
        }
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*rec);
    }

    fn drain(&mut self) -> (Vec<TraceRecord>, u64) {
        let dropped = self.dropped;
        self.dropped = 0;
        (std::mem::take(&mut self.buf).into(), dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn rec(seq: u64, event: Event) -> TraceRecord {
        TraceRecord {
            seq,
            round: seq,
            core: 0,
            frame: 0,
            event,
        }
    }

    #[test]
    fn counts_by_kind_and_depth() {
        let mut c = TraceCounts::default();
        c.observe(&rec(
            0,
            Event::Push {
                edge: 0,
                header: false,
                depth: 7,
            },
        ));
        c.observe(&rec(
            1,
            Event::Pop {
                edge: 0,
                header: false,
                depth: 6,
            },
        ));
        c.observe(&rec(2, Event::Watchdog { rung: 1 }));
        assert_eq!(c.events, 3);
        assert_eq!(c.count(EventKind::Push), 1);
        assert_eq!(c.count(EventKind::Watchdog), 1);
        assert_eq!(c.max_queue_depth, 7);
        assert_eq!(c.realign_episodes(), 0);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut s = RingSink::new(3);
        for i in 0..5u64 {
            s.record(&rec(i, Event::Watchdog { rung: 1 }));
        }
        assert_eq!(s.len(), 3);
        let (records, dropped) = s.drain();
        assert_eq!(dropped, 2);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest records dropped first"
        );
        assert!(s.is_empty());
    }

    #[test]
    fn noop_discards() {
        let mut s = NoopSink;
        s.record(&rec(0, Event::Watchdog { rung: 1 }));
        assert_eq!(s.drain(), (Vec::new(), 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_ring_panics() {
        let _ = RingSink::new(0);
    }
}
