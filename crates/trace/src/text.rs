//! Line-oriented text serialization for trace files.
//!
//! One record per line: `seq round core frame event-token k=v ...`,
//! fields space-separated, keys in a fixed per-event order. The format
//! is deterministic byte-for-byte (the determinism tests compare
//! serialized traces directly) and grep-friendly, and `parse` is the
//! exact inverse of `to_text` so the `cg-trace` binary can re-analyze
//! dumped files.

use crate::event::{
    AmTag, DirTag, Event, EventKind, FaultKindTag, PtrTag, RealignTag, TraceRecord,
};

/// Serializes one record to its line form (no trailing newline).
pub fn record_to_line(rec: &TraceRecord) -> String {
    let head = format!("{} {} {} {}", rec.seq, rec.round, rec.core, rec.frame);
    let tail = match rec.event {
        Event::Fault {
            kind,
            at_instruction,
        } => format!("fault kind={} at={}", kind.label(), at_instruction),
        Event::Push {
            edge,
            header,
            depth,
        } => format!("push edge={edge} header={header} depth={depth}"),
        Event::Pop {
            edge,
            header,
            depth,
        } => format!("pop edge={edge} header={header} depth={depth}"),
        Event::TimeoutPush {
            edge,
            header,
            depth,
        } => format!("tpush edge={edge} header={header} depth={depth}"),
        Event::TimeoutPop { edge, depth } => format!("tpop edge={edge} depth={depth}"),
        Event::PointerCorrupt { edge, which, bit } => {
            format!(
                "ptr-corrupt edge={} which={} bit={}",
                edge,
                which.label(),
                bit
            )
        }
        Event::HeaderCorrupt { edge, bits } => format!("hdr-corrupt edge={edge} bits={bits}"),
        Event::HeaderInserted {
            port,
            frame,
            forced,
        } => format!("hdr-insert port={port} frame={frame} forced={forced}"),
        Event::AmTransition { port, from, to } => {
            format!("am port={} from={} to={}", port, from.label(), to.label())
        }
        Event::RealignStart { port, kind, frame } => {
            format!(
                "realign-start port={} kind={} frame={}",
                port,
                kind.label(),
                frame
            )
        }
        Event::RealignEnd { port, frame } => format!("realign-end port={port} frame={frame}"),
        Event::FrameBoundary { frame } => format!("boundary frame={frame}"),
        Event::QmTimeout { port, dir } => {
            format!("qm-timeout port={} dir={}", port, dir.label())
        }
        Event::Watchdog { rung } => format!("watchdog rung={rung}"),
        Event::FrameRetry { frame, attempt } => {
            format!("frame-retry frame={frame} attempt={attempt}")
        }
        Event::FrameDegraded { frame } => format!("frame-degraded frame={frame}"),
        Event::RunEnd { completed } => format!("run-end completed={completed}"),
    };
    format!("{head} {tail}")
}

/// Serializes a whole trace, one record per line, trailing newline.
pub fn to_text(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&record_to_line(rec));
        out.push('\n');
    }
    out
}

fn field<'a>(
    fields: &'a std::collections::HashMap<&str, &str>,
    key: &str,
) -> Result<&'a str, String> {
    fields
        .get(key)
        .copied()
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn num<T: std::str::FromStr>(
    fields: &std::collections::HashMap<&str, &str>,
    key: &str,
) -> Result<T, String> {
    field(fields, key)?
        .parse()
        .map_err(|_| format!("bad value for `{key}`"))
}

/// Parses one line produced by [`record_to_line`].
pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let mut it = line.split_whitespace();
    let mut next_num = |name: &str| -> Result<u64, String> {
        it.next()
            .ok_or_else(|| format!("missing {name}"))?
            .parse()
            .map_err(|_| format!("bad {name}"))
    };
    let seq = next_num("seq")?;
    let round = next_num("round")?;
    let core = next_num("core")? as u32;
    let frame = next_num("frame")? as u32;
    let token = it.next().ok_or_else(|| "missing event token".to_string())?;
    let kind = EventKind::parse(token).ok_or_else(|| format!("unknown event `{token}`"))?;
    let fields: std::collections::HashMap<&str, &str> =
        it.filter_map(|kv| kv.split_once('=')).collect();

    let event = match kind {
        EventKind::Fault => Event::Fault {
            kind: FaultKindTag::parse(field(&fields, "kind")?)
                .ok_or_else(|| "bad fault kind".to_string())?,
            at_instruction: num(&fields, "at")?,
        },
        EventKind::Push => Event::Push {
            edge: num(&fields, "edge")?,
            header: num(&fields, "header")?,
            depth: num(&fields, "depth")?,
        },
        EventKind::Pop => Event::Pop {
            edge: num(&fields, "edge")?,
            header: num(&fields, "header")?,
            depth: num(&fields, "depth")?,
        },
        EventKind::TimeoutPush => Event::TimeoutPush {
            edge: num(&fields, "edge")?,
            header: num(&fields, "header")?,
            depth: num(&fields, "depth")?,
        },
        EventKind::TimeoutPop => Event::TimeoutPop {
            edge: num(&fields, "edge")?,
            depth: num(&fields, "depth")?,
        },
        EventKind::PointerCorrupt => Event::PointerCorrupt {
            edge: num(&fields, "edge")?,
            which: PtrTag::parse(field(&fields, "which")?)
                .ok_or_else(|| "bad pointer tag".to_string())?,
            bit: num(&fields, "bit")?,
        },
        EventKind::HeaderCorrupt => Event::HeaderCorrupt {
            edge: num(&fields, "edge")?,
            bits: num(&fields, "bits")?,
        },
        EventKind::HeaderInserted => Event::HeaderInserted {
            port: num(&fields, "port")?,
            frame: num(&fields, "frame")?,
            forced: num(&fields, "forced")?,
        },
        EventKind::AmTransition => Event::AmTransition {
            port: num(&fields, "port")?,
            from: AmTag::parse(field(&fields, "from")?)
                .ok_or_else(|| "bad AM state".to_string())?,
            to: AmTag::parse(field(&fields, "to")?).ok_or_else(|| "bad AM state".to_string())?,
        },
        EventKind::RealignStart => Event::RealignStart {
            port: num(&fields, "port")?,
            kind: RealignTag::parse(field(&fields, "kind")?)
                .ok_or_else(|| "bad realign kind".to_string())?,
            frame: num(&fields, "frame")?,
        },
        EventKind::RealignEnd => Event::RealignEnd {
            port: num(&fields, "port")?,
            frame: num(&fields, "frame")?,
        },
        EventKind::FrameBoundary => Event::FrameBoundary {
            frame: num(&fields, "frame")?,
        },
        EventKind::QmTimeout => Event::QmTimeout {
            port: num(&fields, "port")?,
            dir: DirTag::parse(field(&fields, "dir")?)
                .ok_or_else(|| "bad direction".to_string())?,
        },
        EventKind::Watchdog => Event::Watchdog {
            rung: num(&fields, "rung")?,
        },
        EventKind::FrameRetry => Event::FrameRetry {
            frame: num(&fields, "frame")?,
            attempt: num(&fields, "attempt")?,
        },
        EventKind::FrameDegraded => Event::FrameDegraded {
            frame: num(&fields, "frame")?,
        },
        EventKind::RunEnd => Event::RunEnd {
            completed: num(&fields, "completed")?,
        },
    };

    Ok(TraceRecord {
        seq,
        round,
        core,
        frame,
        event,
    })
}

/// Parses a whole trace file (blank lines and `#` comments skipped).
pub fn parse(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MACHINE_CORE;

    fn sample_records() -> Vec<TraceRecord> {
        let events = [
            Event::Fault {
                kind: FaultKindTag::Control,
                at_instruction: 12345,
            },
            Event::Push {
                edge: 2,
                header: true,
                depth: 5,
            },
            Event::Pop {
                edge: 2,
                header: false,
                depth: 4,
            },
            Event::TimeoutPush {
                edge: 1,
                header: false,
                depth: 8,
            },
            Event::TimeoutPop { edge: 0, depth: 0 },
            Event::PointerCorrupt {
                edge: 3,
                which: PtrTag::Tail,
                bit: 7,
            },
            Event::HeaderCorrupt { edge: 3, bits: 2 },
            Event::HeaderInserted {
                port: 0,
                frame: 9,
                forced: true,
            },
            Event::AmTransition {
                port: 1,
                from: AmTag::RcvCmp,
                to: AmTag::Disc,
            },
            Event::RealignStart {
                port: 1,
                kind: RealignTag::Discard,
                frame: 9,
            },
            Event::RealignEnd { port: 1, frame: 10 },
            Event::FrameBoundary { frame: 10 },
            Event::QmTimeout {
                port: 2,
                dir: DirTag::Out,
            },
            Event::Watchdog { rung: 3 },
            Event::FrameRetry {
                frame: 11,
                attempt: 2,
            },
            Event::FrameDegraded { frame: 11 },
            Event::RunEnd { completed: false },
        ];
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceRecord {
                seq: i as u64,
                round: 100 + i as u64,
                core: if i == 13 { MACHINE_CORE } else { i as u32 % 4 },
                frame: i as u32 / 3,
                event,
            })
            .collect()
    }

    #[test]
    fn every_event_roundtrips() {
        let records = sample_records();
        let text = to_text(&records);
        let parsed = parse(&text).expect("parse");
        assert_eq!(parsed, records);
    }

    #[test]
    fn serialization_is_deterministic() {
        let records = sample_records();
        assert_eq!(to_text(&records), to_text(&records));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# a comment\n\n0 1 2 3 watchdog rung=1\n";
        let parsed = parse(text).expect("parse");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].event, Event::Watchdog { rung: 1 });
    }

    #[test]
    fn bad_lines_report_line_numbers() {
        let err = parse("0 1 2 3 watchdog rung=1\n0 1 2 3 bogus x=1\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
