//! The structured event vocabulary of the trace layer.
//!
//! One [`Event`] describes one observable action somewhere in the stack —
//! a fault injection (`cg-fault`), a queue operation (`cg-queue`), an AM
//! FSM transition or header insertion (`cg-core`), or a scheduler /
//! watchdog action (`cg-runtime`). The emitting site never stamps
//! context itself: the [`crate::Tracer`] wraps each event into a
//! [`TraceRecord`] carrying (core, scheduler round, frame counter) plus a
//! global sequence number, so records from every module interleave into
//! one totally ordered, deterministic stream.

/// Core identifier: the stream-graph node index (one node per core).
pub type CoreId = u32;

/// Pseudo-core for machine-wide events (watchdog rungs, run end).
pub const MACHINE_CORE: CoreId = u32::MAX;

/// Architecture-level fault manifestation, mirroring
/// `cg_fault::EffectKind` without depending on it (this crate sits below
/// `cg-fault` in the dependency order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKindTag {
    /// A live data value was corrupted.
    Data,
    /// Fine-grained control flow was perturbed.
    Control,
    /// A memory address (possibly a shared queue pointer) was corrupted.
    Addressing,
    /// The flip was architecturally masked.
    Silent,
}

impl FaultKindTag {
    /// Stable short label (also the trace-file token).
    pub fn label(self) -> &'static str {
        match self {
            FaultKindTag::Data => "data",
            FaultKindTag::Control => "control",
            FaultKindTag::Addressing => "addressing",
            FaultKindTag::Silent => "silent",
        }
    }

    /// Inverse of [`FaultKindTag::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "data" => FaultKindTag::Data,
            "control" => FaultKindTag::Control,
            "addressing" => FaultKindTag::Addressing,
            "silent" => FaultKindTag::Silent,
            _ => return None,
        })
    }
}

/// Which shared queue pointer a corruption struck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtrTag {
    /// The consumer-progress (head) pointer.
    Head,
    /// The producer-progress (tail) pointer.
    Tail,
}

impl PtrTag {
    /// Stable short label.
    pub fn label(self) -> &'static str {
        match self {
            PtrTag::Head => "head",
            PtrTag::Tail => "tail",
        }
    }

    /// Inverse of [`PtrTag::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "head" => PtrTag::Head,
            "tail" => PtrTag::Tail,
            _ => return None,
        })
    }
}

/// Port direction for QM timeouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirTag {
    /// An incoming (pop-side) port.
    In,
    /// An outgoing (push-side) port.
    Out,
}

impl DirTag {
    /// Stable short label.
    pub fn label(self) -> &'static str {
        match self {
            DirTag::In => "in",
            DirTag::Out => "out",
        }
    }

    /// Inverse of [`DirTag::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "in" => DirTag::In,
            "out" => DirTag::Out,
            _ => return None,
        })
    }
}

/// AM FSM state, mirroring `commguard::AmState` (paper Table 1) without
/// depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmTag {
    /// Receiving and computing (aligned).
    RcvCmp,
    /// Expecting the next frame header (aligned).
    ExpHdr,
    /// Discarding whole frames.
    DiscFr,
    /// Discarding items and frames.
    Disc,
    /// Padding pops for lost data.
    Pdg,
}

impl AmTag {
    /// `true` for the two aligned (non-realigning) states.
    pub fn is_aligned(self) -> bool {
        matches!(self, AmTag::RcvCmp | AmTag::ExpHdr)
    }

    /// Stable short label.
    pub fn label(self) -> &'static str {
        match self {
            AmTag::RcvCmp => "rcvcmp",
            AmTag::ExpHdr => "exphdr",
            AmTag::DiscFr => "discfr",
            AmTag::Disc => "disc",
            AmTag::Pdg => "pdg",
        }
    }

    /// Inverse of [`AmTag::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "rcvcmp" => AmTag::RcvCmp,
            "exphdr" => AmTag::ExpHdr,
            "discfr" => AmTag::DiscFr,
            "disc" => AmTag::Disc,
            "pdg" => AmTag::Pdg,
            _ => return None,
        })
    }
}

/// Realignment flavour (paper §4.2): pad fabricates lost data,
/// discard drops extra data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RealignTag {
    /// Computation realignment: pops padded.
    Pad,
    /// Communication realignment: queued units discarded.
    Discard,
}

impl RealignTag {
    /// Stable short label.
    pub fn label(self) -> &'static str {
        match self {
            RealignTag::Pad => "pad",
            RealignTag::Discard => "discard",
        }
    }

    /// Inverse of [`RealignTag::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "pad" => RealignTag::Pad,
            "discard" => RealignTag::Discard,
            _ => return None,
        })
    }
}

/// One structured trace event. Compact (`Copy`, word-sized payloads) so
/// ring-buffer recording stays cheap on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A fault struck this core (`cg-fault`).
    Fault {
        /// Manifestation class.
        kind: FaultKindTag,
        /// Core-local committed-instruction count at the strike.
        at_instruction: u64,
    },
    /// A successful queue push (`cg-queue`).
    Push {
        /// Edge (queue) index.
        edge: u32,
        /// Whether the unit was a frame header.
        header: bool,
        /// Queue occupancy after the operation.
        depth: u32,
    },
    /// A successful queue pop (`cg-queue`).
    Pop {
        /// Edge (queue) index.
        edge: u32,
        /// Whether the unit was a frame header.
        header: bool,
        /// Queue occupancy after the operation.
        depth: u32,
    },
    /// A forced push past a full condition (QM timeout path).
    TimeoutPush {
        /// Edge (queue) index.
        edge: u32,
        /// Whether the unit was a frame header.
        header: bool,
        /// Queue occupancy after the operation.
        depth: u32,
    },
    /// A forced pop past an empty condition (QM timeout path).
    TimeoutPop {
        /// Edge (queue) index.
        edge: u32,
        /// Queue occupancy after the operation.
        depth: u32,
    },
    /// A shared queue pointer was corrupted by fault injection.
    PointerCorrupt {
        /// Edge (queue) index.
        edge: u32,
        /// Head or tail.
        which: PtrTag,
        /// Bit flipped.
        bit: u32,
    },
    /// An in-flight header codeword was corrupted by fault injection.
    HeaderCorrupt {
        /// Edge (queue) index.
        edge: u32,
        /// Distinct bits flipped (1 = ECC corrects, 2 = SECDED detects).
        bits: u32,
    },
    /// The HI pushed a frame header into its queue (`cg-core`).
    HeaderInserted {
        /// Outgoing port index on the emitting core.
        port: u32,
        /// Frame id carried by the header.
        frame: u32,
        /// `true` when forced past a full queue (timeout path).
        forced: bool,
    },
    /// An AM FSM state transition (`cg-core`, paper Table 1).
    AmTransition {
        /// Incoming port index on the emitting core.
        port: u32,
        /// State before.
        from: AmTag,
        /// State after.
        to: AmTag,
    },
    /// A realignment episode began (mirrors `SubopCounters::record_event`).
    RealignStart {
        /// Incoming port index on the emitting core.
        port: u32,
        /// Pad or discard.
        kind: RealignTag,
        /// The consumer's active frame computation at episode start.
        frame: u32,
    },
    /// A realignment episode ended: the AM re-entered an aligned state.
    RealignEnd {
        /// Incoming port index on the emitting core.
        port: u32,
        /// The consumer's active frame computation at episode end.
        frame: u32,
    },
    /// A core crossed a frame-computation boundary (`cg-runtime`).
    FrameBoundary {
        /// The frame computation now beginning.
        frame: u32,
    },
    /// A per-port QM timeout fired (`cg-runtime`).
    QmTimeout {
        /// Port index on the emitting core.
        port: u32,
        /// Pop side or push side.
        dir: DirTag,
    },
    /// The cross-core watchdog fired a rung (`cg-runtime`).
    Watchdog {
        /// Escalation rung (1 = arm timeouts, 2 = force progress,
        /// 3 = abort frame, 4 = degrade frame).
        rung: u32,
    },
    /// A frame is being rolled back and re-executed from its boundary
    /// snapshot (`cg-runtime`, threaded recovery).
    FrameRetry {
        /// The frame being re-executed.
        frame: u32,
        /// Re-execution attempt number (1 = first retry).
        attempt: u32,
    },
    /// A frame's outputs were degraded (padded) after the retry budget
    /// was exhausted, or by watchdog rung 4 (`cg-runtime`).
    FrameDegraded {
        /// The frame degraded.
        frame: u32,
    },
    /// The run finished (or hit the round cap).
    RunEnd {
        /// Whether every core completed.
        completed: bool,
    },
}

/// Event category, for counting sinks and filters. Keep in sync with
/// [`Event`]: one variant per event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// [`Event::Fault`].
    Fault,
    /// [`Event::Push`].
    Push,
    /// [`Event::Pop`].
    Pop,
    /// [`Event::TimeoutPush`].
    TimeoutPush,
    /// [`Event::TimeoutPop`].
    TimeoutPop,
    /// [`Event::PointerCorrupt`].
    PointerCorrupt,
    /// [`Event::HeaderCorrupt`].
    HeaderCorrupt,
    /// [`Event::HeaderInserted`].
    HeaderInserted,
    /// [`Event::AmTransition`].
    AmTransition,
    /// [`Event::RealignStart`].
    RealignStart,
    /// [`Event::RealignEnd`].
    RealignEnd,
    /// [`Event::FrameBoundary`].
    FrameBoundary,
    /// [`Event::QmTimeout`].
    QmTimeout,
    /// [`Event::Watchdog`].
    Watchdog,
    /// [`Event::FrameRetry`].
    FrameRetry,
    /// [`Event::FrameDegraded`].
    FrameDegraded,
    /// [`Event::RunEnd`].
    RunEnd,
}

impl EventKind {
    /// Number of categories (sizes the counting arrays).
    pub const COUNT: usize = 17;

    /// All categories, in declaration order (index == discriminant).
    pub fn all() -> [EventKind; Self::COUNT] {
        [
            EventKind::Fault,
            EventKind::Push,
            EventKind::Pop,
            EventKind::TimeoutPush,
            EventKind::TimeoutPop,
            EventKind::PointerCorrupt,
            EventKind::HeaderCorrupt,
            EventKind::HeaderInserted,
            EventKind::AmTransition,
            EventKind::RealignStart,
            EventKind::RealignEnd,
            EventKind::FrameBoundary,
            EventKind::QmTimeout,
            EventKind::Watchdog,
            EventKind::FrameRetry,
            EventKind::FrameDegraded,
            EventKind::RunEnd,
        ]
    }

    /// Stable name (also the trace-file event token).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Fault => "fault",
            EventKind::Push => "push",
            EventKind::Pop => "pop",
            EventKind::TimeoutPush => "tpush",
            EventKind::TimeoutPop => "tpop",
            EventKind::PointerCorrupt => "ptr-corrupt",
            EventKind::HeaderCorrupt => "hdr-corrupt",
            EventKind::HeaderInserted => "hdr-insert",
            EventKind::AmTransition => "am",
            EventKind::RealignStart => "realign-start",
            EventKind::RealignEnd => "realign-end",
            EventKind::FrameBoundary => "boundary",
            EventKind::QmTimeout => "qm-timeout",
            EventKind::Watchdog => "watchdog",
            EventKind::FrameRetry => "frame-retry",
            EventKind::FrameDegraded => "frame-degraded",
            EventKind::RunEnd => "run-end",
        }
    }

    /// Inverse of [`EventKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        EventKind::all().into_iter().find(|k| k.label() == s)
    }
}

impl Event {
    /// This event's category.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Fault { .. } => EventKind::Fault,
            Event::Push { .. } => EventKind::Push,
            Event::Pop { .. } => EventKind::Pop,
            Event::TimeoutPush { .. } => EventKind::TimeoutPush,
            Event::TimeoutPop { .. } => EventKind::TimeoutPop,
            Event::PointerCorrupt { .. } => EventKind::PointerCorrupt,
            Event::HeaderCorrupt { .. } => EventKind::HeaderCorrupt,
            Event::HeaderInserted { .. } => EventKind::HeaderInserted,
            Event::AmTransition { .. } => EventKind::AmTransition,
            Event::RealignStart { .. } => EventKind::RealignStart,
            Event::RealignEnd { .. } => EventKind::RealignEnd,
            Event::FrameBoundary { .. } => EventKind::FrameBoundary,
            Event::QmTimeout { .. } => EventKind::QmTimeout,
            Event::Watchdog { .. } => EventKind::Watchdog,
            Event::FrameRetry { .. } => EventKind::FrameRetry,
            Event::FrameDegraded { .. } => EventKind::FrameDegraded,
            Event::RunEnd { .. } => EventKind::RunEnd,
        }
    }
}

/// One fully stamped trace record: an [`Event`] plus the execution
/// context the tracer captured when it was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global emission sequence number (total order over the run).
    pub seq: u64,
    /// Scheduler round at emission.
    pub round: u64,
    /// Emitting core (node index), or [`MACHINE_CORE`].
    pub core: CoreId,
    /// The emitting core's frame counter (`active-fc`) at emission.
    pub frame: u32,
    /// The event itself.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_roundtrip() {
        for k in EventKind::all() {
            assert_eq!(EventKind::parse(k.label()), Some(k));
        }
        assert_eq!(EventKind::parse("nonsense"), None);
    }

    #[test]
    fn tag_labels_roundtrip() {
        for t in [
            FaultKindTag::Data,
            FaultKindTag::Control,
            FaultKindTag::Addressing,
            FaultKindTag::Silent,
        ] {
            assert_eq!(FaultKindTag::parse(t.label()), Some(t));
        }
        for t in [
            AmTag::RcvCmp,
            AmTag::ExpHdr,
            AmTag::DiscFr,
            AmTag::Disc,
            AmTag::Pdg,
        ] {
            assert_eq!(AmTag::parse(t.label()), Some(t));
        }
        for t in [RealignTag::Pad, RealignTag::Discard] {
            assert_eq!(RealignTag::parse(t.label()), Some(t));
        }
        for t in [PtrTag::Head, PtrTag::Tail] {
            assert_eq!(PtrTag::parse(t.label()), Some(t));
        }
        for t in [DirTag::In, DirTag::Out] {
            assert_eq!(DirTag::parse(t.label()), Some(t));
        }
    }

    #[test]
    fn aligned_states() {
        assert!(AmTag::RcvCmp.is_aligned());
        assert!(AmTag::ExpHdr.is_aligned());
        assert!(!AmTag::Pdg.is_aligned());
        assert!(!AmTag::Disc.is_aligned());
        assert!(!AmTag::DiscFr.is_aligned());
    }

    #[test]
    fn every_event_maps_to_its_kind() {
        let cases: [(Event, EventKind); 17] = [
            (
                Event::Fault {
                    kind: FaultKindTag::Data,
                    at_instruction: 1,
                },
                EventKind::Fault,
            ),
            (
                Event::Push {
                    edge: 0,
                    header: false,
                    depth: 1,
                },
                EventKind::Push,
            ),
            (
                Event::Pop {
                    edge: 0,
                    header: true,
                    depth: 0,
                },
                EventKind::Pop,
            ),
            (
                Event::TimeoutPush {
                    edge: 0,
                    header: false,
                    depth: 2,
                },
                EventKind::TimeoutPush,
            ),
            (
                Event::TimeoutPop { edge: 0, depth: 0 },
                EventKind::TimeoutPop,
            ),
            (
                Event::PointerCorrupt {
                    edge: 0,
                    which: PtrTag::Head,
                    bit: 3,
                },
                EventKind::PointerCorrupt,
            ),
            (
                Event::HeaderCorrupt { edge: 0, bits: 2 },
                EventKind::HeaderCorrupt,
            ),
            (
                Event::HeaderInserted {
                    port: 0,
                    frame: 1,
                    forced: false,
                },
                EventKind::HeaderInserted,
            ),
            (
                Event::AmTransition {
                    port: 0,
                    from: AmTag::ExpHdr,
                    to: AmTag::RcvCmp,
                },
                EventKind::AmTransition,
            ),
            (
                Event::RealignStart {
                    port: 0,
                    kind: RealignTag::Pad,
                    frame: 2,
                },
                EventKind::RealignStart,
            ),
            (
                Event::RealignEnd { port: 0, frame: 3 },
                EventKind::RealignEnd,
            ),
            (Event::FrameBoundary { frame: 4 }, EventKind::FrameBoundary),
            (
                Event::QmTimeout {
                    port: 1,
                    dir: DirTag::In,
                },
                EventKind::QmTimeout,
            ),
            (Event::Watchdog { rung: 1 }, EventKind::Watchdog),
            (
                Event::FrameRetry {
                    frame: 5,
                    attempt: 1,
                },
                EventKind::FrameRetry,
            ),
            (Event::FrameDegraded { frame: 6 }, EventKind::FrameDegraded),
            (Event::RunEnd { completed: true }, EventKind::RunEnd),
        ];
        for (ev, kind) in cases {
            assert_eq!(ev.kind(), kind);
        }
    }
}
