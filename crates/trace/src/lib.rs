//! # cg-trace — structured event tracing for the CommGuard simulator
//!
//! CommGuard's argument (paper §4, §7) is about *sequences*: a fault
//! strikes, a frame header goes missing or arrives early, the consumer's
//! Alignment Manager leaves its aligned states, pops are discarded or
//! padded, and some rounds later alignment is restored. End-of-run
//! aggregate counters cannot show that story. This crate records it.
//!
//! The pieces:
//!
//! * [`Event`] / [`TraceRecord`] — a compact, `Copy` event vocabulary
//!   covering fault injections, queue operations, AM/HI activity, and
//!   scheduler/watchdog actions, each stamped with (core, scheduler
//!   round, frame counter) and a global sequence number;
//! * [`Tracer`] — the cloneable handle threaded through queues, guards,
//!   injectors and the executor; zero-cost when disabled (one branch),
//!   deterministic when enabled;
//! * [`TraceSink`] with [`RingSink`] (bounded, keeps the recent past)
//!   and [`NoopSink`] (counts only — the overhead-ablation point);
//! * [`text`] — a line-oriented, byte-deterministic trace-file format
//!   with a full parser;
//! * [`chrome`] — a Chrome-trace / Perfetto JSON exporter
//!   (open the file at `ui.perfetto.dev` for a per-core timeline);
//! * [`analyze`] — a post-mortem pass reconstructing per-fault
//!   propagation chains (injection → first misaligned pop →
//!   discard/pad episode → realignment round) plus realignment-latency
//!   and queue-occupancy histograms;
//! * the `cg-trace` binary — dump, filter, summarize, analyze, and
//!   export recorded trace files.
//!
//! This crate sits at the bottom of the workspace dependency order (it
//! depends on nothing), so every other crate can emit events through it.

pub mod analyze;
pub mod chrome;
pub mod event;
pub mod json_check;
pub mod sink;
pub mod text;
pub mod tracer;

pub use analyze::{analyze, Analysis, Histogram, PropagationChain};
pub use chrome::to_chrome_json;
pub use event::{
    AmTag, CoreId, DirTag, Event, EventKind, FaultKindTag, PtrTag, RealignTag, TraceRecord,
    MACHINE_CORE,
};
pub use sink::{NoopSink, RingSink, TraceCounts, TraceData, TraceSink};
pub use tracer::{TraceConfig, Tracer};
