//! Trace-file inspection CLI.
//!
//! ```text
//! cg-trace dump FILE [--core N] [--kind K] [--from-round R] [--to-round R] [--limit N]
//! cg-trace summary FILE
//! cg-trace analyze FILE
//! cg-trace chrome FILE --out OUT.json [--name NAME]
//! cg-trace check FILE.json
//! ```
//!
//! `FILE` is a text trace as written by the campaign `--trace` flag or
//! the `trace_run` experiment binary. `check` validates that a JSON file
//! (e.g. an exported Chrome trace) is well-formed.

use std::process::ExitCode;

use cg_trace::event::EventKind;
use cg_trace::{analyze, json_check, text, to_chrome_json, TraceRecord};

fn usage() -> ! {
    eprintln!(
        "usage: cg-trace dump FILE [--core N] [--kind K] [--from-round R] [--to-round R] [--limit N]\n\
         \x20      cg-trace summary FILE\n\
         \x20      cg-trace analyze FILE\n\
         \x20      cg-trace chrome FILE --out OUT.json [--name NAME]\n\
         \x20      cg-trace check FILE.json\n\
         \n\
         kinds: {}",
        EventKind::all().map(|k| k.label()).join(" ")
    );
    std::process::exit(2)
}

fn read_trace(path: &str) -> Vec<TraceRecord> {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cg-trace: cannot read {path}: {e}");
        std::process::exit(2)
    });
    text::parse(&body).unwrap_or_else(|e| {
        eprintln!("cg-trace: {path}: {e}");
        std::process::exit(2)
    })
}

struct DumpFilter {
    core: Option<u32>,
    kind: Option<EventKind>,
    from_round: u64,
    to_round: u64,
    limit: usize,
}

fn dump(path: &str, rest: &[String]) -> ExitCode {
    let mut f = DumpFilter {
        core: None,
        kind: None,
        from_round: 0,
        to_round: u64::MAX,
        limit: usize::MAX,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> &String {
        *i += 1;
        rest.get(*i).unwrap_or_else(|| usage())
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--core" => f.core = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--kind" => {
                f.kind = Some(EventKind::parse(value(&mut i)).unwrap_or_else(|| usage()));
            }
            "--from-round" => f.from_round = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--to-round" => f.to_round = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--limit" => f.limit = value(&mut i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    let records = read_trace(path);
    let mut shown = 0usize;
    for rec in &records {
        if shown >= f.limit {
            break;
        }
        if f.core.is_some_and(|c| rec.core != c)
            || f.kind.is_some_and(|k| rec.event.kind() != k)
            || rec.round < f.from_round
            || rec.round > f.to_round
        {
            continue;
        }
        println!("{}", text::record_to_line(rec));
        shown += 1;
    }
    eprintln!("cg-trace: {shown} of {} records shown", records.len());
    ExitCode::SUCCESS
}

fn summary(path: &str) -> ExitCode {
    let records = read_trace(path);
    let rounds = records.iter().map(|r| r.round).max().unwrap_or(0);
    let mut cores: Vec<u32> = records.iter().map(|r| r.core).collect();
    cores.sort_unstable();
    cores.dedup();
    println!(
        "{path}: {} records, {} cores, {} rounds",
        records.len(),
        cores.len(),
        rounds
    );
    for kind in EventKind::all() {
        let n = records.iter().filter(|r| r.event.kind() == kind).count();
        if n > 0 {
            println!("  {:<14} {n}", kind.label());
        }
    }
    ExitCode::SUCCESS
}

fn analyze_cmd(path: &str) -> ExitCode {
    let records = read_trace(path);
    let analysis = analyze(&records);
    print!("{analysis}");
    if analysis.chains.is_empty() {
        eprintln!("cg-trace: no propagation chains found");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn chrome(path: &str, rest: &[String]) -> ExitCode {
    let mut out = None;
    let mut name = "commguard-run".to_string();
    let mut i = 0;
    let value = |i: &mut usize| -> &String {
        *i += 1;
        rest.get(*i).unwrap_or_else(|| usage())
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" => out = Some(value(&mut i).clone()),
            "--name" => name = value(&mut i).clone(),
            _ => usage(),
        }
        i += 1;
    }
    let out = out.unwrap_or_else(|| usage());
    let records = read_trace(path);
    let json = to_chrome_json(&name, &records);
    json_check::validate(&json).unwrap_or_else(|e| {
        eprintln!("cg-trace: internal error, emitted invalid JSON: {e}");
        std::process::exit(1)
    });
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cg-trace: cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "cg-trace: {} records -> {out} (open at https://ui.perfetto.dev)",
        records.len()
    );
    ExitCode::SUCCESS
}

fn check(path: &str) -> ExitCode {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cg-trace: cannot read {path}: {e}");
        std::process::exit(2)
    });
    match json_check::validate(&body) {
        Ok(()) => {
            eprintln!("cg-trace: {path}: valid JSON ({} bytes)", body.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cg-trace: {path}: INVALID JSON: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file) = match (argv.first(), argv.get(1)) {
        (Some(c), Some(f)) => (c.as_str(), f.as_str()),
        _ => usage(),
    };
    let rest = &argv[2..];
    match cmd {
        "dump" => dump(file, rest),
        "summary" if rest.is_empty() => summary(file),
        "analyze" if rest.is_empty() => analyze_cmd(file),
        "chrome" => chrome(file, rest),
        "check" if rest.is_empty() => check(file),
        _ => usage(),
    }
}
