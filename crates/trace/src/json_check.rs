//! A minimal JSON well-formedness checker.
//!
//! The workspace is offline (no serde), but the Chrome exporter and the
//! CI smoke step both need to prove the emitted JSON actually parses.
//! This is a strict recursive-descent validator over RFC 8259 grammar —
//! it builds no value tree, it only accepts or rejects with a byte
//! offset.

/// Validates that `input` is one complete JSON value.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos:?}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", *pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while let Some(c) = b.get(*pos) {
        if c.is_ascii_digit() {
            saw_digit = true;
            *pos += 1;
        } else {
            break;
        }
    }
    if !saw_digit {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = false;
        while let Some(c) = b.get(*pos) {
            if c.is_ascii_digit() {
                frac = true;
                *pos += 1;
            } else {
                break;
            }
        }
        if !frac {
            return Err(format!("bad fraction at byte {}", *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = false;
        while let Some(c) = b.get(*pos) {
            if c.is_ascii_digit() {
                exp = true;
                *pos += 1;
            } else {
                break;
            }
        }
        if !exp {
            return Err(format!("bad exponent at byte {}", *pos));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            "\"a\\n\\u0041\"",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
            " { \"k\" : [ true , false ] } ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"unterminated",
            "{} {}",
            "1.",
            "1e",
            "\"bad\\q\"",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }
}
