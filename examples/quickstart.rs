//! Quickstart: build a small guarded streaming pipeline, inject faults,
//! and watch CommGuard keep it aligned.
//!
//! ```sh
//! cargo run --release -p cg-experiments --example quickstart
//! ```

use cg_runtime::{run, Program, SimConfig};
use commguard::fault::{EffectModel, Mtbe};
use commguard::graph::{GraphBuilder, NodeKind};
use commguard::Protection;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the stream graph: a source, a squaring filter, a sink.
    //    Rates are static: 4 items per firing on every edge.
    let mut b = GraphBuilder::new("quickstart");
    let src = b.add_node("source", NodeKind::Source);
    let sq = b.add_node("square", NodeKind::Filter);
    let snk = b.add_node("sink", NodeKind::Sink);
    b.connect(src, sq, 4, 4)?;
    b.connect(sq, snk, 4, 4)?;
    let graph = b.build()?;

    // 2. Bind work functions. Items are u32 words.
    let mut p = Program::new(graph);
    let mut next = 0u32;
    p.set_source(src, move |out| {
        for _ in 0..4 {
            out.push(next % 100);
            next += 1;
        }
    });
    p.set_filter(sq, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v * v));
    });

    // 3. Run error-free first.
    let frames = 5000;
    let clean = run(p, &SimConfig::error_free(frames))?;
    println!(
        "error-free: {} items reached the sink, {} instructions simulated",
        clean.sink_output(snk).len(),
        clean.total_instructions()
    );

    // 4. Same pipeline on error-prone cores (MTBE = 5k instructions —
    //    an extreme rate), guarded by CommGuard.
    let rebuild = || -> Result<Program, Box<dyn std::error::Error>> {
        let mut b = GraphBuilder::new("quickstart");
        let src = b.add_node("source", NodeKind::Source);
        let sq = b.add_node("square", NodeKind::Filter);
        let snk = b.add_node("sink", NodeKind::Sink);
        b.connect(src, sq, 4, 4)?;
        b.connect(sq, snk, 4, 4)?;
        let mut p = Program::new(b.build()?);
        let mut next = 0u32;
        p.set_source(src, move |out| {
            for _ in 0..4 {
                out.push(next % 100);
                next += 1;
            }
        });
        p.set_filter(sq, |inp, out| {
            out[0].extend(inp[0].iter().map(|&v| v * v));
        });
        Ok(p)
    };

    let cfg = SimConfig {
        protection: Protection::commguard(),
        mtbe: Mtbe::instructions(5_000),
        effect_model: EffectModel::calibrated(),
        ..SimConfig::error_free(frames)
    };
    let guarded = run(rebuild()?, &cfg)?;
    let sub = guarded.total_subops();
    println!(
        "guarded under errors: completed = {}, {} items at the sink",
        guarded.completed,
        guarded.sink_output(snk).len()
    );
    println!(
        "  faults: {} | realignment: {} items padded, {} discarded \
         ({} pad / {} discard episodes)",
        guarded.total_faults(),
        sub.padded_items,
        sub.discarded_items,
        sub.pad_events,
        sub.discard_events
    );
    let matching = guarded
        .sink_output(snk)
        .iter()
        .zip(clean.sink_output(snk))
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "  {}/{} output items still bit-exact — errors stayed data errors",
        matching,
        clean.sink_output(snk).len()
    );
    assert!(guarded.completed);
    assert_eq!(
        guarded.sink_output(snk).len(),
        clean.sink_output(snk).len(),
        "CommGuard keeps the output stream structurally intact"
    );
    Ok(())
}
