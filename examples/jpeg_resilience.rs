//! Decode the jpeg benchmark image on error-prone cores under all four
//! protection configurations (the paper's Fig. 3 story) and write the
//! resulting images next to each other.
//!
//! ```sh
//! cargo run --release -p cg-experiments --example jpeg_resilience
//! ```

use cg_apps::jpeg::JpegApp;
use cg_fault::Mtbe;
use cg_runtime::{run, SimConfig};
use commguard::Protection;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = JpegApp::small();
    std::fs::create_dir_all("results")?;
    println!(
        "decoding a {}x{} image on 10 error-prone cores (MTBE = 1M instructions)\n",
        app.width(),
        app.height()
    );
    app.raw().save_ppm("results/example_raw.ppm")?;

    for (name, protection) in [
        ("error_free", Protection::ErrorFree),
        ("unprotected_queue", Protection::PpuUnprotectedQueue),
        ("reliable_queue", Protection::PpuReliableQueue),
        ("commguard", Protection::commguard()),
    ] {
        let (program, sink) = app.build();
        let cfg = SimConfig {
            protection,
            mtbe: Mtbe::kilo_instructions(1024),
            seed: 0,
            ..SimConfig::error_free(app.frames())
        };
        let report = run(program, &cfg)?;
        let image = app.decode(report.sink_output(sink));
        let psnr = app.psnr(report.sink_output(sink));
        let path = format!("results/example_{name}.ppm");
        image.save_ppm(&path)?;
        println!(
            "  {name:<18} PSNR {psnr:>6.2} dB  (completed: {}, timeouts: {}) -> {path}",
            report.completed,
            report.total_timeouts()
        );
    }
    println!("\nopen the PPMs to see the Fig. 3 story: only CommGuard keeps the flower.");
    Ok(())
}
