//! Using the CommGuard modules directly — without the stream-graph
//! runtime — to protect a hand-rolled producer/consumer channel. Shows
//! the HI/AM/QM interfaces at the level of the paper's Fig. 5.
//!
//! ```sh
//! cargo run --release -p cg-experiments --example guarded_channel
//! ```

use commguard::config::GuardConfig;
use commguard::queue::{QueueSpec, SimQueue};
use commguard::CoreGuard;

fn main() {
    let frames: u32 = 8;
    let items_per_frame: u32 = 6;

    // One queue between a producer core and a consumer core.
    let mut q = SimQueue::new(QueueSpec::with_capacity(1024));
    let cfg = GuardConfig::default();
    let mut producer = CoreGuard::new(0, 1, &cfg, Some(frames));
    let mut consumer = CoreGuard::new(1, 0, &cfg, Some(frames));

    // Producer side: the HI stamps each frame with a header; the thread
    // itself is oblivious. On frame 3 a control-flow error makes the
    // thread push one item short.
    producer.start();
    for frame in 0..frames {
        if frame > 0 {
            producer.scope_boundary();
        }
        assert!(producer.hi_tick(0, &mut q), "header inserted");
        let produced = if frame == 3 {
            items_per_frame - 1
        } else {
            items_per_frame
        };
        for i in 0..produced {
            producer.push(0, &mut q, frame * 100 + i).unwrap();
        }
    }
    producer.finish();
    assert!(producer.hi_tick(0, &mut q));
    q.flush();

    // Consumer side: the AM checks every pop against the expected frame.
    consumer.start();
    for frame in 0..frames {
        if frame > 0 {
            consumer.scope_boundary();
        }
        print!("frame {frame}: consumer got [");
        for i in 0..items_per_frame {
            let v = consumer.pop(0, &mut q).expect("stream has data");
            print!("{}{v}", if i == 0 { "" } else { ", " });
        }
        println!("]  (AM state: {:?})", consumer.am_state(0));
    }

    let sub = consumer.subops();
    println!(
        "\nconsumer accepted {} items, padded {} — the lost item became a \
         single data error and frame 4 started realigned",
        sub.accepted_items, sub.padded_items
    );
    assert_eq!(sub.padded_items, 1);
    assert_eq!(sub.accepted_items, u64::from(frames * items_per_frame) - 1);
}
