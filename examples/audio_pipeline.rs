//! Run the mp3-style audio decoder across the MTBE sweep and print the
//! quality trend (the paper's Fig. 10b), plus how much data realignment
//! sacrificed (Fig. 8's metric) at each error rate.
//!
//! ```sh
//! cargo run --release -p cg-experiments --example audio_pipeline
//! ```

use cg_apps::mp3::Mp3App;
use cg_fault::Mtbe;
use cg_runtime::{run, SimConfig};
use commguard::Protection;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Mp3App::new(16_384);
    // Error-free baseline: the purely algorithmic compression loss.
    let (program, sink) = app.build();
    let clean = run(program, &SimConfig::error_free(app.frames()))?;
    println!(
        "mp3-like decoder, {} stereo samples, error-free SNR {:.2} dB \
         (the lossy-compression operating point)\n",
        app.samples(),
        app.snr(clean.sink_output(sink))
    );

    println!(
        "{:>10} {:>10} {:>14} {:>12}",
        "MTBE", "SNR (dB)", "loss ratio", "realigns"
    );
    for mtbe_k in [64u64, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let (program, sink) = app.build();
        let cfg = SimConfig {
            protection: Protection::commguard(),
            mtbe: Mtbe::kilo_instructions(mtbe_k),
            seed: 7,
            ..SimConfig::error_free(app.frames())
        };
        let report = run(program, &cfg)?;
        let sub = report.total_subops();
        println!(
            "{:>9}k {:>10.2} {:>14.3e} {:>12}",
            mtbe_k,
            app.snr(report.sink_output(sink)),
            report.loss_ratio(),
            sub.pad_events + sub.discard_events,
        );
    }
    println!("\nSNR climbs back to the error-free ceiling as errors become rare.");

    // Listenable artifacts, like the paper's linked audio examples.
    std::fs::create_dir_all("results")?;
    for (name, mtbe_k) in [("mp3_mtbe128k", 128u64), ("mp3_mtbe2048k", 2048)] {
        let (program, sink) = app.build();
        let cfg = SimConfig {
            protection: Protection::commguard(),
            mtbe: Mtbe::kilo_instructions(mtbe_k),
            seed: 7,
            ..SimConfig::error_free(app.frames())
        };
        let report = run(program, &cfg)?;
        let (l, r) = app.decode(report.sink_output(sink));
        let path = format!("results/{name}.wav");
        cg_metrics::wav::save_wav(&path, &cg_metrics::wav::interleave(&l, &r), 2, 44_100)?;
        println!("wrote {path}");
    }
    Ok(())
}
