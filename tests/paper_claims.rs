//! The paper's headline quantitative claims, encoded as assertions at
//! reduced (test-friendly) scale. Each test cites the section it checks.

use cg_apps::jpeg::JpegApp;
use cg_fault::Mtbe;
use cg_runtime::{estimate_overhead, run, MemModel, OverheadModel, SimConfig};
use commguard::Protection;

fn jpeg_run(protection: Protection, mtbe_k: u64, seed: u64) -> (cg_runtime::RunReport, JpegApp) {
    let app = JpegApp::new(128, 64, 75);
    let (p, _sink) = app.build();
    let cfg = SimConfig {
        protection,
        inject: true,
        mtbe: Mtbe::kilo_instructions(mtbe_k),
        seed,
        max_rounds: 10_000_000,
        ..SimConfig::error_free(app.frames())
    };
    (run(p, &cfg).expect("runs"), app)
}

/// §1/§10: "CommGuard allows important streaming applications like JPEG
/// ... to execute without crashing and to sustain good output quality,
/// even for errors as frequent as every 500µs" — at their clock, an MTBE
/// of ~512k instructions or less. We check it completes and realigns at
/// MTBE 64k.
#[test]
fn executes_without_crashing_at_extreme_rates() {
    let (report, _) = jpeg_run(Protection::commguard(), 64, 0);
    assert!(report.completed);
    let sub = report.total_subops();
    assert!(
        sub.pad_events + sub.discard_events > 0,
        "realignment active"
    );
}

/// §7.1 / Fig. 8: "Even at extreme error rates (MTBE of 64K
/// instructions) the loss is less than 0.2% for five benchmarks ... jpeg
/// ... still less than 0.2% at an MTBE of 512K instructions."
#[test]
fn data_loss_stays_small() {
    let (report, _) = jpeg_run(Protection::commguard(), 512, 1);
    assert!(
        report.loss_ratio() < 0.002,
        "jpeg loss at 512k = {:.2e}, paper bound 0.2%",
        report.loss_ratio()
    );
}

/// §5.1 footnote: "We did not observe any timeouts in any of our
/// experiments" — for guarded runs the timeout machinery must stay idle
/// even under errors (alignment, not timeouts, restores progress).
#[test]
fn guarded_runs_do_not_time_out() {
    for seed in 0..3 {
        let (report, _) = jpeg_run(Protection::commguard(), 128, seed);
        assert_eq!(report.total_timeouts(), 0, "seed {seed}");
    }
}

/// §2.3 / Fig. 3: the reliable queue alone is *not* enough — CommGuard
/// must deliver strictly better quality than both baselines at the
/// paper's 1M-instruction MTBE (averaged over seeds).
#[test]
fn figure3_ordering_holds() {
    let mean = |protection: Protection| -> f64 {
        (0..3)
            .map(|seed| {
                let (r, app) = jpeg_run(protection, 256, seed);
                app.psnr(r.sink_output(app_sink(&app)))
            })
            .sum::<f64>()
            / 3.0
    };
    let guarded = mean(Protection::commguard());
    let reliable = mean(Protection::PpuReliableQueue);
    let unprotected = mean(Protection::PpuUnprotectedQueue);
    assert!(
        guarded > reliable && guarded > unprotected,
        "guarded {guarded:.1} vs reliable {reliable:.1} vs unprotected {unprotected:.1}"
    );
}

fn app_sink(app: &JpegApp) -> commguard::graph::NodeId {
    app.graph().node_by_name("F7_sink").expect("sink exists")
}

/// §10: "only introduces mean overheads of 0.3% on the memory subsystem
/// events, 2% as additional hardware operations relative to the
/// committed instructions, and 1% on execution time" — we bound each at
/// the same order of magnitude on the test-size jpeg.
#[test]
fn overheads_are_low() {
    let (report, _) = jpeg_run(Protection::commguard(), 1_000_000, 0);
    // Memory events.
    let (lr, sr) = report.header_memory_ratios(&MemModel::default());
    assert!(
        lr < 0.02 && sr < 0.02,
        "header memory overhead {lr:.4}/{sr:.4}"
    );
    // Hardware suboperations.
    assert!(
        report.subop_ratio() < 0.10,
        "suboperation ratio {:.4}",
        report.subop_ratio()
    );
    // Execution time (analytic §5.3 model).
    let e = estimate_overhead(&report, &OverheadModel::default());
    assert!(e.total() < 0.05, "execution-time overhead {:.4}", e.total());
}

/// §5.5: the reliable storage budget is ~82 bytes for 4 queues per core.
#[test]
fn reliable_storage_budget() {
    assert_eq!(commguard::Qit::new(4).reliable_storage_bytes(), 82);
}

/// Fig. 2: the jpeg graph reproduces the paper's exact rates at 640-wide.
#[test]
fn figure2_rates() {
    let app = JpegApp::new(640, 8, 75);
    let g = app.graph();
    let sched = g.schedule().expect("consistent");
    let f7 = g.node_by_name("F7_sink").unwrap();
    let edge = g.node(f7).inputs()[0];
    assert_eq!(sched.items_per_iteration(edge), 15_360);
    assert_eq!(g.node_count(), 10);
}
