//! Validates the §9 Rely-style analysis: the analytic per-frame
//! reliability bound must match the measured fraction of bit-exact
//! frames in a guarded simulation of a stateless pipeline.

use cg_fault::{EffectModel, Mtbe};
use cg_runtime::{run, Program, SimConfig};
use commguard::graph::{GraphBuilder, NodeId, NodeKind, StreamGraph};
use commguard::{analysis, Protection};

const ITEMS_PER_FRAME: u32 = 8;

fn stateless_pipeline() -> (StreamGraph, NodeId, NodeId) {
    let mut b = GraphBuilder::new("rely");
    let src = b.add_node("src", NodeKind::Source);
    let f1 = b.add_node("f1", NodeKind::Filter);
    let f2 = b.add_node("f2", NodeKind::Filter);
    let snk = b.add_node("snk", NodeKind::Sink);
    b.pipeline(&[src, f1, f2, snk], ITEMS_PER_FRAME).unwrap();
    (b.build().unwrap(), src, snk)
}

fn program() -> (Program, NodeId) {
    let (g, src, snk) = stateless_pipeline();
    let f1 = g.node_by_name("f1").unwrap();
    let f2 = g.node_by_name("f2").unwrap();
    let mut p = Program::new(g);
    let mut next = 0u32;
    p.set_source(src, move |out| {
        for _ in 0..ITEMS_PER_FRAME {
            out.push(next % 251);
            next = next.wrapping_add(1);
        }
    });
    p.set_filter(f1, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v.wrapping_mul(3)));
    });
    p.set_filter(f2, |inp, out| {
        out[0].extend(inp[0].iter().map(|&v| v.wrapping_add(17)));
    });
    (p, snk)
}

#[test]
fn analytic_bound_matches_measured_frame_exactness() {
    let frames: u64 = 3000;
    let mtbe = Mtbe::instructions(3_000);
    let model = EffectModel::calibrated();

    // Analytic bound.
    let (g, _, _) = stateless_pipeline();
    let sched = g.schedule().unwrap();
    let r = analysis::analyze(&g, &sched, mtbe, &model);
    assert!(
        (0.5..1.0).contains(&r.frame_reliability),
        "pick parameters in the informative regime: {r:?}"
    );

    // Reference output.
    let (p, snk) = program();
    let clean = run(p, &SimConfig::error_free(frames)).unwrap();
    let reference = clean.sink_output(snk).to_vec();

    // Measured frame exactness over several seeds.
    let mut exact = 0usize;
    let mut total = 0usize;
    for seed in 0..5 {
        let (p, snk) = program();
        let cfg = SimConfig {
            protection: Protection::commguard(),
            mtbe,
            effect_model: model,
            seed,
            max_rounds: 20_000_000,
            ..SimConfig::error_free(frames)
        };
        let report = run(p, &cfg).unwrap();
        assert!(report.completed);
        let got = report.sink_output(snk);
        assert_eq!(got.len(), reference.len());
        for (a, b) in got
            .chunks(ITEMS_PER_FRAME as usize)
            .zip(reference.chunks(ITEMS_PER_FRAME as usize))
        {
            total += 1;
            if a == b {
                exact += 1;
            }
        }
    }
    let measured = exact as f64 / total as f64;
    assert!(
        (measured - r.frame_reliability).abs() < 0.08,
        "analytic {:.3} vs measured {measured:.3}",
        r.frame_reliability
    );

    // And the unguarded formula predicts decay to ~0 over this stream.
    let tail = analysis::unguarded_stream_reliability(&r, frames - 1);
    assert!(tail < 1e-9, "unguarded tail reliability {tail}");
}
