//! Cross-crate integration tests: every benchmark app, end to end,
//! through the full stack (graph → schedule → queues → guards → fault
//! injection → metrics). Workloads are deliberately tiny so the suite
//! stays fast in debug builds.

use cg_apps::beamformer::BeamformerApp;
use cg_apps::complex_fir::ComplexFirApp;
use cg_apps::fft_app::FftApp;
use cg_apps::jpeg::JpegApp;
use cg_apps::mp3::Mp3App;
use cg_apps::vocoder::VocoderApp;
use cg_fault::{EffectModel, Mtbe};
use cg_runtime::{run, Program, RunReport, SimConfig};
use commguard::graph::NodeId;
use commguard::Protection;

/// Runs a freshly built program under the given protection/error config.
fn run_with(
    build: impl Fn() -> (Program, NodeId),
    frames: u64,
    protection: Protection,
    mtbe_k: u64,
    seed: u64,
) -> (RunReport, NodeId) {
    let (p, sink) = build();
    let cfg = SimConfig {
        protection,
        inject: true,
        mtbe: Mtbe::kilo_instructions(mtbe_k),
        seed,
        max_rounds: 10_000_000,
        ..SimConfig::error_free(frames)
    };
    (run(p, &cfg).expect("run starts"), sink)
}

/// Every protection mode completes on the image decoder at a harsh
/// error rate, and the sink receives its exact structural item count
/// whenever CommGuard is on.
#[test]
fn jpeg_full_stack_under_errors() {
    let app = JpegApp::new(64, 32, 75);
    for protection in [
        Protection::ErrorFree,
        Protection::PpuUnprotectedQueue,
        Protection::PpuReliableQueue,
        Protection::commguard(),
    ] {
        let (report, sink) = run_with(|| app.build(), app.frames(), protection, 64, 5);
        assert!(report.completed, "{}: must not hang", protection.label());
        if protection.guards_enabled() {
            assert_eq!(
                report.sink_output(sink).len(),
                64 * 32 * 3,
                "CommGuard keeps the output structurally complete"
            );
        }
    }
}

#[test]
fn mp3_full_stack_under_errors() {
    let app = Mp3App::new(1024);
    let (report, sink) = run_with(|| app.build(), app.frames(), Protection::commguard(), 64, 2);
    assert!(report.completed);
    let (l, r) = app.decode(report.sink_output(sink));
    assert_eq!(l.len(), 1024);
    assert_eq!(r.len(), 1024);
    let snr = app.snr(report.sink_output(sink));
    assert!(snr.is_finite());
}

#[test]
fn kernels_full_stack_under_errors() {
    let beam = BeamformerApp::new(256);
    let (report, sink) = run_with(
        || beam.build(),
        beam.frames(),
        Protection::commguard(),
        64,
        3,
    );
    assert!(report.completed);
    assert_eq!(beam.decode(report.sink_output(sink)).len(), 256);

    let voc = VocoderApp::new(256);
    let (report, sink) = run_with(|| voc.build(), voc.frames(), Protection::commguard(), 64, 3);
    assert!(report.completed);
    assert_eq!(voc.decode(report.sink_output(sink)).len(), 256);

    let cfir = ComplexFirApp::new(256);
    let (report, sink) = run_with(
        || cfir.build(),
        cfir.frames(),
        Protection::commguard(),
        64,
        3,
    );
    assert!(report.completed);
    assert_eq!(cfir.decode(report.sink_output(sink)).len(), 256);

    let fft = FftApp::new(8);
    let (report, sink) = run_with(|| fft.build(), fft.frames(), Protection::commguard(), 64, 3);
    assert!(report.completed);
    assert_eq!(fft.decode(report.sink_output(sink)).len(), 8);
}

/// The whole stack is bit-deterministic for a fixed seed, and seeds
/// matter.
#[test]
fn full_stack_determinism() {
    let one = |seed| {
        let app = JpegApp::new(64, 32, 75);
        let (report, sink) = run_with(
            || app.build(),
            app.frames(),
            Protection::commguard(),
            128,
            seed,
        );
        report.sink_output(sink).to_vec()
    };
    assert_eq!(one(1), one(1));
    assert_ne!(one(1), one(2));
}

/// Error-free guarded runs are bit-identical to unguarded ones at the
/// output (guards are transparent when nothing goes wrong), and never
/// time out.
#[test]
fn guards_transparent_when_error_free() {
    let app = Mp3App::new(512);
    let clean = |protection| {
        let (p, sink) = app.build();
        let cfg = SimConfig {
            protection,
            ..SimConfig::error_free(app.frames())
        };
        let r = run(p, &cfg).expect("runs");
        assert!(r.completed);
        assert_eq!(r.total_timeouts(), 0, "paper: no timeouts observed");
        r.sink_output(sink).to_vec()
    };
    assert_eq!(clean(Protection::ErrorFree), clean(Protection::commguard()));
}

/// Quality ordering at a harsh error rate, averaged over seeds:
/// CommGuard ≥ reliable-queue baseline for the image decoder.
#[test]
fn commguard_quality_dominates_baseline() {
    let app = JpegApp::new(64, 48, 75);
    let mean_psnr = |protection: Protection| -> f64 {
        (0..4)
            .map(|seed| {
                let (report, sink) = run_with(|| app.build(), app.frames(), protection, 256, seed);
                app.psnr(report.sink_output(sink))
            })
            .sum::<f64>()
            / 4.0
    };
    let guarded = mean_psnr(Protection::commguard());
    let baseline = mean_psnr(Protection::PpuReliableQueue);
    assert!(
        guarded > baseline,
        "CommGuard {guarded:.1} dB must beat baseline {baseline:.1} dB"
    );
}

/// Control-flow-only faults cannot corrupt data values; every wrong
/// output word must stem from padding/discarding — and the AM must have
/// actually realigned.
#[test]
fn control_faults_produce_only_alignment_effects() {
    let app = ComplexFirApp::new(512);
    let (p, sink) = app.build();
    let cfg = SimConfig {
        protection: Protection::commguard(),
        inject: true,
        mtbe: Mtbe::kilo_instructions(16),
        effect_model: EffectModel::control_only(),
        seed: 9,
        max_rounds: 10_000_000,
        ..SimConfig::error_free(app.frames())
    };
    let report = run(p, &cfg).expect("runs");
    assert!(report.completed);
    assert!(report.total_faults().control > 0);
    let sub = report.total_subops();
    assert!(
        sub.padded_items + sub.discarded_items > 0,
        "control faults at this rate must trigger realignment"
    );
    assert_eq!(report.sink_output(sink).len(), 512);
}
