//! Threaded-executor parity across the whole benchmark suite: for every
//! app, guarded and unguarded, `run_parallel` must be bit-identical to
//! the deterministic executor at the sink and move exactly the same
//! header traffic — real threads change timing, never results. Workloads
//! are tiny so the suite stays fast in debug builds.

use cg_apps::beamformer::BeamformerApp;
use cg_apps::complex_fir::ComplexFirApp;
use cg_apps::fft_app::FftApp;
use cg_apps::jpeg::JpegApp;
use cg_apps::mp3::Mp3App;
use cg_apps::vocoder::VocoderApp;
use cg_runtime::{run, run_parallel, run_parallel_with, ParTransport, Program, SimConfig};
use commguard::graph::NodeId;
use commguard::Protection;

fn assert_parity(
    name: &str,
    build: impl Fn() -> (Program, NodeId),
    frames: u64,
    protection: Protection,
) {
    let cfg = SimConfig {
        protection,
        inject: false,
        ..SimConfig::error_free(frames)
    };
    let (p, sink) = build();
    let want = run(p, &cfg).expect("deterministic run");
    assert!(want.completed, "{name}: deterministic run incomplete");
    let (p, _) = build();
    let got = run_parallel(p, &cfg).expect("threaded run");
    assert!(got.completed, "{name}: threaded run incomplete");
    assert_eq!(
        got.sink_output(sink),
        want.sink_output(sink),
        "{name} [{}]: sink output diverged",
        protection.label()
    );
    assert_eq!(
        got.queues.header_pushes,
        want.queues.header_pushes,
        "{name} [{}]: header push traffic diverged",
        protection.label()
    );
    assert_eq!(
        got.queues.header_pops,
        want.queues.header_pops,
        "{name} [{}]: header pop traffic diverged",
        protection.label()
    );
    assert_eq!(
        got.queues.item_pushes, want.queues.item_pushes,
        "{name}: item push traffic diverged"
    );
}

fn suite_parity(protection: Protection) {
    let beam = BeamformerApp::new(256);
    assert_parity(
        "audiobeamformer",
        || beam.build(),
        beam.frames(),
        protection,
    );
    let voc = VocoderApp::new(256);
    assert_parity("channelvocoder", || voc.build(), voc.frames(), protection);
    let cfir = ComplexFirApp::new(256);
    assert_parity("complex-fir", || cfir.build(), cfir.frames(), protection);
    let fft = FftApp::new(8);
    assert_parity("fft", || fft.build(), fft.frames(), protection);
    let jpeg = JpegApp::new(64, 32, 75);
    assert_parity("jpeg", || jpeg.build(), jpeg.frames(), protection);
    let mp3 = Mp3App::new(512);
    assert_parity("mp3", || mp3.build(), mp3.frames(), protection);
}

#[test]
fn whole_suite_parity_unguarded() {
    suite_parity(Protection::ErrorFree);
}

#[test]
fn whole_suite_parity_guarded() {
    suite_parity(Protection::commguard());
}

/// Both transports of the threaded executor agree with each other on a
/// real app, guarded — the batch path is not a different computation.
#[test]
fn transports_agree_on_an_app() {
    let app = FftApp::new(8);
    let cfg = SimConfig {
        protection: Protection::commguard(),
        inject: false,
        ..SimConfig::error_free(app.frames())
    };
    let (p, sink) = app.build();
    let batched = run_parallel_with(p, &cfg, ParTransport::Batched).expect("batched");
    let (p, _) = app.build();
    let per_item = run_parallel_with(p, &cfg, ParTransport::PerItem).expect("per-item");
    assert_eq!(batched.sink_output(sink), per_item.sink_output(sink));
    assert_eq!(batched.queues.header_pushes, per_item.queues.header_pushes);
    assert_eq!(batched.queues.item_pops, per_item.queues.item_pops);
}
