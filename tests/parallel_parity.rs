//! Threaded-executor parity across the whole benchmark suite: for every
//! app, guarded and unguarded, `run_parallel` must be bit-identical to
//! the deterministic executor at the sink and move exactly the same
//! header traffic — real threads change timing, never results. Workloads
//! are tiny so the suite stays fast in debug builds.

use cg_apps::beamformer::BeamformerApp;
use cg_apps::complex_fir::ComplexFirApp;
use cg_apps::fft_app::FftApp;
use cg_apps::jpeg::JpegApp;
use cg_apps::mp3::Mp3App;
use cg_apps::vocoder::VocoderApp;
use cg_runtime::{run, run_parallel, run_parallel_with, ParTransport, Program, SimConfig};
use commguard::graph::NodeId;
use commguard::Protection;

fn assert_parity(
    name: &str,
    build: impl Fn() -> (Program, NodeId),
    frames: u64,
    protection: Protection,
) {
    let cfg = SimConfig {
        protection,
        inject: false,
        ..SimConfig::error_free(frames)
    };
    let (p, sink) = build();
    let want = run(p, &cfg).expect("deterministic run");
    assert!(want.completed, "{name}: deterministic run incomplete");
    let (p, _) = build();
    let got = run_parallel(p, &cfg).expect("threaded run");
    assert!(got.completed, "{name}: threaded run incomplete");
    assert_eq!(
        got.sink_output(sink),
        want.sink_output(sink),
        "{name} [{}]: sink output diverged",
        protection.label()
    );
    assert_eq!(
        got.queues.header_pushes,
        want.queues.header_pushes,
        "{name} [{}]: header push traffic diverged",
        protection.label()
    );
    assert_eq!(
        got.queues.header_pops,
        want.queues.header_pops,
        "{name} [{}]: header pop traffic diverged",
        protection.label()
    );
    assert_eq!(
        got.queues.item_pushes, want.queues.item_pushes,
        "{name}: item push traffic diverged"
    );
}

fn suite_parity(protection: Protection) {
    let beam = BeamformerApp::new(256);
    assert_parity(
        "audiobeamformer",
        || beam.build(),
        beam.frames(),
        protection,
    );
    let voc = VocoderApp::new(256);
    assert_parity("channelvocoder", || voc.build(), voc.frames(), protection);
    let cfir = ComplexFirApp::new(256);
    assert_parity("complex-fir", || cfir.build(), cfir.frames(), protection);
    let fft = FftApp::new(8);
    assert_parity("fft", || fft.build(), fft.frames(), protection);
    let jpeg = JpegApp::new(64, 32, 75);
    assert_parity("jpeg", || jpeg.build(), jpeg.frames(), protection);
    let mp3 = Mp3App::new(512);
    assert_parity("mp3", || mp3.build(), mp3.frames(), protection);
}

#[test]
fn whole_suite_parity_unguarded() {
    suite_parity(Protection::ErrorFree);
}

#[test]
fn whole_suite_parity_guarded() {
    suite_parity(Protection::commguard());
}

/// All three transports of the threaded executor agree with each other
/// on a real app, guarded — neither the batch path nor the lock-free
/// ring is a different computation.
#[test]
fn transports_agree_on_an_app() {
    let app = FftApp::new(8);
    let cfg = SimConfig {
        protection: Protection::commguard(),
        inject: false,
        ..SimConfig::error_free(app.frames())
    };
    let (p, sink) = app.build();
    let batched = run_parallel_with(p, &cfg, ParTransport::Batched).expect("batched");
    let (p, _) = app.build();
    let per_item = run_parallel_with(p, &cfg, ParTransport::PerItem).expect("per-item");
    let (p, _) = app.build();
    let lock_free = run_parallel_with(p, &cfg, ParTransport::LockFree).expect("lock-free");
    assert_eq!(batched.sink_output(sink), per_item.sink_output(sink));
    assert_eq!(batched.queues.header_pushes, per_item.queues.header_pushes);
    assert_eq!(batched.queues.item_pops, per_item.queues.item_pops);
    assert_eq!(batched.sink_output(sink), lock_free.sink_output(sink));
    assert_eq!(batched.queues.header_pushes, lock_free.queues.header_pushes);
    assert_eq!(batched.queues.item_pops, lock_free.queues.item_pops);
}

/// Bit-parity regression for the lock-free ring: across the whole app
/// suite, guarded and unguarded, ten seeded repetitions of the lock-free
/// transport must match the batched transport and the deterministic
/// executor at the sink and in header traffic. The runs are error-free,
/// so the seeds vary nothing *inside* the program — each repetition is a
/// fresh OS-level thread interleaving, which is exactly the variable the
/// lock-free cursors must be insensitive to.
#[test]
fn lock_free_bit_parity_across_seeds() {
    const SEEDS: u64 = 10;
    type AppCase = (&'static str, Box<dyn Fn() -> (Program, NodeId)>, u64);
    let apps: Vec<AppCase> = {
        let beam = BeamformerApp::new(128);
        let voc = VocoderApp::new(128);
        let cfir = ComplexFirApp::new(128);
        let fft = FftApp::new(8);
        let jpeg = JpegApp::new(64, 32, 75);
        let mp3 = Mp3App::new(256);
        let beam_frames = beam.frames();
        let voc_frames = voc.frames();
        let cfir_frames = cfir.frames();
        let fft_frames = fft.frames();
        let jpeg_frames = jpeg.frames();
        let mp3_frames = mp3.frames();
        vec![
            (
                "audiobeamformer",
                Box::new(move || beam.build()),
                beam_frames,
            ),
            ("channelvocoder", Box::new(move || voc.build()), voc_frames),
            ("complex-fir", Box::new(move || cfir.build()), cfir_frames),
            ("fft", Box::new(move || fft.build()), fft_frames),
            ("jpeg", Box::new(move || jpeg.build()), jpeg_frames),
            ("mp3", Box::new(move || mp3.build()), mp3_frames),
        ]
    };
    for protection in [Protection::ErrorFree, Protection::commguard()] {
        for (name, build, frames) in &apps {
            let base = SimConfig {
                protection,
                inject: false,
                ..SimConfig::error_free(*frames)
            };
            let (p, sink) = build();
            let want = run(p, &base).expect("deterministic run");
            for seed in 1..=SEEDS {
                let cfg = base.clone().seed(seed);
                let (p, _) = build();
                let ba = run_parallel_with(p, &cfg, ParTransport::Batched).expect("batched");
                let (p, _) = build();
                let lf = run_parallel_with(p, &cfg, ParTransport::LockFree).expect("lock-free");
                let tag = format!("{name} [{}] seed {seed}", protection.label());
                assert_eq!(
                    lf.sink_output(sink),
                    want.sink_output(sink),
                    "{tag}: lock-free sink diverged from deterministic"
                );
                assert_eq!(
                    lf.sink_output(sink),
                    ba.sink_output(sink),
                    "{tag}: lock-free sink diverged from batched"
                );
                assert_eq!(
                    lf.queues.header_pushes, want.queues.header_pushes,
                    "{tag}: lock-free header pushes diverged"
                );
                assert_eq!(
                    lf.queues.header_pops, want.queues.header_pops,
                    "{tag}: lock-free header pops diverged"
                );
                assert_eq!(
                    lf.queues.item_pushes, want.queues.item_pushes,
                    "{tag}: lock-free item pushes diverged"
                );
                assert_eq!(
                    ba.queues.header_pushes, want.queues.header_pushes,
                    "{tag}: batched header pushes diverged"
                );
            }
        }
    }
}
