//! Mechanistic end-to-end validation: real register-file bit flips in a
//! PPU bytecode core (the paper's §6 injection mechanism) produce
//! misaligned item streams, and the CommGuard modules realign them —
//! tying the `cg-vm` mechanism layer to the `commguard` contribution
//! without the effect-level injector in between.
//!
//! Producer: a `dot4` kernel on the VM, one protected scope (id 1) per
//! output frame. Its scope-entry trace is the PPU protection module's
//! signal to the Header Inserter; its (possibly wrong-count) output
//! segments are pushed through a guarded queue. Consumer: the Alignment
//! Manager delivering exactly `ITEMS_PER_FRAME` values per frame
//! computation, no matter what the producer did.

use cg_vm::kernels;
use cg_vm::Vm;
use commguard::config::GuardConfig;
use commguard::queue::{QueueSpec, SimQueue};
use commguard::{CoreGuard, SubopCounters};
use rand::Rng;

const ITEMS_PER_FRAME: usize = 1; // dot4 pushes one sum per scope

/// Runs the producer kernel with optional single-flip injections and
/// returns its output segmented by frame scopes.
fn produce(flips: &[(u64, u8, u32)]) -> Vec<Vec<u32>> {
    let mut vm = Vm::new(kernels::dot4(), kernels::input(160));
    let mut flips = flips.to_vec();
    flips.sort_by_key(|f| f.0);
    for &(at, reg, bit) in &flips {
        vm.run_until(u64::MAX, at).expect("fuel");
        vm.inject_flip(cg_vm::Reg(reg), bit);
    }
    let halted = vm.run_until(10_000_000, u64::MAX).expect("fuel");
    assert!(halted, "PPU cores never hang");
    // Segment output by frame-scope (id 1) entries.
    let marks: Vec<usize> = vm
        .scope_entries
        .iter()
        .filter(|(id, _)| *id == 1)
        .map(|&(_, len)| len)
        .collect();
    let out = vm.output().to_vec();
    let mut frames = Vec::new();
    for (i, &start) in marks.iter().enumerate() {
        let end = marks.get(i + 1).copied().unwrap_or(out.len());
        frames.push(out[start.min(out.len())..end.min(out.len())].to_vec());
    }
    frames
}

/// Streams producer frames through HI → queue → AM and returns what the
/// consumer's frame computations receive.
fn guard_and_consume(frames: &[Vec<u32>], consumer_frames: u32) -> (Vec<Vec<u32>>, SubopCounters) {
    let mut q = SimQueue::new(QueueSpec::with_capacity(65_536));
    let cfg = GuardConfig::default();
    let mut prod = CoreGuard::new(0, 1, &cfg, Some(frames.len() as u32));
    prod.start();
    for (i, frame) in frames.iter().enumerate() {
        if i > 0 {
            prod.scope_boundary();
        }
        assert!(prod.hi_tick(0, &mut q));
        for &v in frame {
            prod.push(0, &mut q, v).unwrap();
        }
    }
    prod.finish();
    assert!(prod.hi_tick(0, &mut q));
    q.flush();

    let mut cons = CoreGuard::new(1, 0, &cfg, Some(consumer_frames));
    cons.start();
    let mut delivered = Vec::new();
    for f in 0..consumer_frames {
        if f > 0 {
            cons.scope_boundary();
        }
        let mut got = Vec::new();
        for _ in 0..ITEMS_PER_FRAME {
            got.push(cons.pop(0, &mut q).expect("END header prevents blocking"));
        }
        delivered.push(got);
    }
    let sub = cons.subops().clone();
    (delivered, sub)
}

#[test]
fn clean_mechanistic_run_is_exact() {
    let frames = produce(&[]);
    assert!(frames.len() >= 10, "dot4 over 160 items has 40 frames");
    assert!(frames.iter().all(|f| f.len() == ITEMS_PER_FRAME));
    let n = frames.len() as u32;
    let (delivered, sub) = guard_and_consume(&frames, n);
    assert_eq!(delivered, frames);
    assert_eq!(sub.padded_items, 0);
    assert_eq!(sub.discarded_items, 0);
}

/// A targeted flip in the inner-loop counter makes one frame emit the
/// wrong item count; the AM confines the damage to that neighbourhood
/// and later frames arrive exactly.
#[test]
fn register_flip_damage_is_confined() {
    let clean = produce(&[]);
    // Try a few targeted flips until one is architecturally visible
    // (registers holding live counters/accumulators mid-run).
    let candidates = [(700u64, 0u8, 2u32), (700, 7, 1), (900, 4, 8), (650, 1, 3)];
    let corrupted = candidates
        .iter()
        .map(|&(at, reg, bit)| produce(&[(at, reg, bit)]))
        .find(|c| c != &clean)
        .expect("at least one candidate flip must be visible");

    let n = clean.len() as u32;
    let (delivered, _sub) = guard_and_consume(&corrupted, n);
    // Structural guarantee: every consumer frame got its exact count.
    assert_eq!(delivered.len(), clean.len());
    assert!(delivered.iter().all(|f| f.len() == ITEMS_PER_FRAME));
    // Ephemerality: the tail of the stream (well past the flip) is exact.
    let tail = clean.len() - 5..clean.len();
    assert_eq!(
        &delivered[tail.clone()],
        &clean[tail],
        "frames far after the flip must realign"
    );
}

/// Random single flips, many trials: the consumer always receives its
/// structural item count and never blocks — the headline CommGuard
/// property driven end to end by the real mechanism.
#[test]
fn random_flips_never_break_structure() {
    let clean = produce(&[]);
    let n = clean.len() as u32;
    let mut rng = commguard::fault::core_rng(2015, 0);
    for _ in 0..60 {
        let at = rng.gen_range(100..4000u64);
        let reg = rng.gen_range(0..16u8);
        let bit = rng.gen_range(0..32u32);
        let frames = produce(&[(at, reg, bit)]);
        let (delivered, _) = guard_and_consume(&frames, n);
        assert_eq!(delivered.len() as u32, n, "flip ({at},{reg},{bit})");
        assert!(
            delivered.iter().all(|f| f.len() == ITEMS_PER_FRAME),
            "flip ({at},{reg},{bit}) broke frame structure"
        );
    }
}
