//! `any::<T>()` for the primitive types the workspace tests use.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
