//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length distribution for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `Vec`s of `element` values with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
