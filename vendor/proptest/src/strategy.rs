//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the held value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    ///
    /// # Panics
    ///
    /// Panics on an empty arm list or an all-zero weight sum.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("pick bounded by total weight")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
