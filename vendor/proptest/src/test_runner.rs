//! Test-runner configuration and deterministic per-case RNGs.

use rand::{RngCore, SeedableRng, SmallRng};

/// The RNG driving value generation.
pub type TestRng = SmallRng;

/// A failed property case: the formatted assertion message.
pub type TestCaseError = String;

/// Runner configuration (only the case count is meaningful here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Derives the deterministic RNG for case `case` of the test named
/// `test_path`: a stable FNV-1a hash of the name mixed with the case
/// index, so every test gets an independent, reproducible stream.
pub fn case_rng(test_path: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = SmallRng::seed_from_u64(h ^ (u64::from(case) << 32));
    // Warm one step so adjacent case indices decorrelate fully.
    let _ = rng.next_u64();
    rng
}
