//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this vendored shim
//! implements the subset of the proptest 1.x API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`, integer
//! ranges and tuples as strategies, [`strategy::Just`], `any::<T>()`,
//! `prop::collection::vec`, weighted `prop_oneof!`, the `proptest!`
//! macro with `#![proptest_config(...)]`, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs
//!   printed; minimisation is up to the reader.
//! - **Deterministic seeding.** Case `i` of every test derives from a
//!   fixed seed mixed with `i`, so failures reproduce across runs.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The prelude every property test imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}\n  both: `{:?}`", format!($($fmt)+), l);
    }};
}

/// Weighted (or unweighted) union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Rejects the current case without failing it (the body simply moves
/// on to the next generated input).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `ProptestConfig::cases`
/// generated inputs. Parameters may be `name in strategy` or `name: Type`
/// (shorthand for `name in any::<Type>()`), freely mixed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{($config) $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{($crate::test_runner::ProptestConfig::default()) $($rest)*}
    };
}

/// Splits a `proptest!` block into individual test functions.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::__proptest_one!{($config) $(#[$meta])* fn $name [] ($($params)*) $body}
        $crate::__proptest_fns!{($config) $($rest)*}
    };
}

/// Normalises one test's parameter list into `(name, strategy)` pairs,
/// then emits the test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    // `name in strategy`, more parameters follow.
    (($config:expr) $(#[$meta:meta])* fn $name:ident [$($acc:tt)*]
        ($arg:ident in $strategy:expr, $($params:tt)*) $body:block) => {
        $crate::__proptest_one!{($config) $(#[$meta])* fn $name
            [$($acc)* ($arg, ($strategy))] ($($params)*) $body}
    };
    // `name in strategy`, last parameter.
    (($config:expr) $(#[$meta:meta])* fn $name:ident [$($acc:tt)*]
        ($arg:ident in $strategy:expr $(,)?) $body:block) => {
        $crate::__proptest_one!{($config) $(#[$meta])* fn $name
            [$($acc)* ($arg, ($strategy))] () $body}
    };
    // `name: Type`, more parameters follow.
    (($config:expr) $(#[$meta:meta])* fn $name:ident [$($acc:tt)*]
        ($arg:ident : $ty:ty, $($params:tt)*) $body:block) => {
        $crate::__proptest_one!{($config) $(#[$meta])* fn $name
            [$($acc)* ($arg, ($crate::arbitrary::any::<$ty>()))] ($($params)*) $body}
    };
    // `name: Type`, last parameter.
    (($config:expr) $(#[$meta:meta])* fn $name:ident [$($acc:tt)*]
        ($arg:ident : $ty:ty $(,)?) $body:block) => {
        $crate::__proptest_one!{($config) $(#[$meta])* fn $name
            [$($acc)* ($arg, ($crate::arbitrary::any::<$ty>()))] () $body}
    };
    // All parameters normalised: emit the test function.
    (($config:expr) $(#[$meta:meta])* fn $name:ident
        [$(($arg:ident, $strategy:tt))+] () $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(
                    &$strategy,
                    &mut __proptest_rng,
                );)+
                let __proptest_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        __proptest_inputs
                    );
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..7, y in 0usize..100, z in 1u64..64) {
            prop_assert!((3..7).contains(&x));
            prop_assert!(y < 100);
            prop_assert!((1..64).contains(&z));
        }

        #[test]
        fn tuples_and_vec(pairs in prop::collection::vec((1u32..6, 1u32..6), 1..5)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 5);
            for (a, b) in pairs {
                prop_assert!((1..6).contains(&a), "a = {a}");
                prop_assert!((1..6).contains(&b));
            }
        }

        #[test]
        fn typed_and_strategy_params_mix(word: u32, bit in 0u32..32, flag: bool) {
            prop_assume!(bit != 31 || flag);
            let flipped = word ^ (1 << bit);
            prop_assert_ne!(flipped, word);
            prop_assert_eq!(flipped ^ (1 << bit), word);
        }

        #[test]
        fn map_and_oneof(v in prop_oneof![
            2 => (1u32..5).prop_map(|x| x * 10),
            1 => Just(77u32),
        ]) {
            prop_assert!(v == 77 || (v % 10 == 0 && v < 50), "v = {v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_applies(b in any::<bool>()) {
            // 17 cases of a trivially true property.
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strat = prop_oneof![
            1 => Just(1u32),
            1 => Just(2u32),
            1 => Just(3u32),
        ];
        let mut seen = std::collections::HashSet::new();
        let mut rng = crate::test_runner::case_rng("oneof_hits_every_arm", 0);
        for _ in 0..200 {
            seen.insert(Strategy::generate(&strat, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x} is never > 100");
            }
        }
        always_fails();
    }
}
