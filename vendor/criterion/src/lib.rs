//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's bench
//! targets use (`Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `sample_size`, `throughput`, `black_box`, the
//! `criterion_group!`/`criterion_main!` macros). Measurement is a plain
//! wall-clock mean over adaptively chosen iteration counts — fine for
//! the relative comparisons the benches make, with none of criterion's
//! statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measurement time per sample batch.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 100, None, &mut f);
        self
    }
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// Just the parameter (the group provides the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples (smaller = faster benches).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; present for API parity).
    pub fn finish(self) {}
}

/// Passed to the measured closure; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate: grow the iteration count until one batch is long enough
    // to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 24 {
            break;
        }
        iters = (iters * 2).max((iters as f64 * 1.5) as u64 + 1);
    }
    // Measure.
    let samples = sample_size.clamp(1, 20);
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let mean_ns = total.as_nanos() as f64 / (samples as u64 * iters) as f64;
    let best_ns = best.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean_ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / mean_ns)
        }
        None => String::new(),
    };
    println!("{label:<56} mean {mean_ns:>12.1} ns/iter  best {best_ns:>12.1} ns/iter{rate}");
}

/// Binds benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.throughput(Throughput::Elements(1));
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t2");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            assert_eq!(x, 7);
            b.iter(|| x * 2)
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
