//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! surface (the subset this workspace uses). A poisoned std lock is
//! recovered by taking the inner guard, matching `parking_lot`'s
//! semantics of not poisoning at all.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
