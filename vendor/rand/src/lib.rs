//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the (small) subset of the `rand` 0.8 API the workspace
//! uses: [`rngs::SmallRng`] (a deterministic xoshiro256++), the
//! [`SeedableRng`]/[`RngCore`]/[`Rng`] traits, `gen`, `gen_range`, and
//! `gen_bool`. Streams are deterministic for a fixed seed, which is all
//! the simulator requires; they are *not* bit-compatible with upstream
//! `rand` (the repo never hardcodes expected random values, only
//! statistical and self-consistency properties).

pub mod rngs;

pub use rngs::SmallRng;

/// Core generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits
/// (the shim's equivalent of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly (`Range`/`RangeInclusive`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift (Lemire) reduction of 64 random bits onto `[0, span)`.
fn reduce64(raw: u64, span: u64) -> u64 {
    ((u128::from(raw) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = reduce64(rng.next_u64(), span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 means the full 2^64 domain: use raw bits.
                let off = if span == 0 {
                    rng.next_u64()
                } else {
                    reduce64(rng.next_u64(), span)
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of the inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_balanced() {
        let mut r = SmallRng::seed_from_u64(11);
        let trues = (0..100_000).filter(|_| r.gen::<bool>()).count();
        assert!((45_000..55_000).contains(&trues), "trues {trues}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = SmallRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.1)).count();
        assert!((8_000..12_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut r = SmallRng::seed_from_u64(17);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "bucket {c}");
        }
    }
}
